package cache

import (
	"fmt"
	"math/bits"

	"ccl/internal/memsys"
)

// TLBConfig describes the data TLB. Zero Entries disables it.
type TLBConfig struct {
	Entries  int   // total entry count
	PageSize int64 // bytes mapped per entry
	Penalty  int64 // cycles per miss (software/table walk)
	// Ways selects the associativity of the array TLB: entries per
	// set, with Entries/Ways sets indexed by page number. Zero (the
	// default, and what every named hierarchy uses) selects full
	// associativity — one set of Entries ways — which matches real
	// dTLBs like the UltraSPARC-I's 64-entry fully-associative one.
	Ways int
}

// validate reports a TLB configuration error, if any. Called by New
// only when Entries is positive.
func (c TLBConfig) validate() error {
	if c.PageSize <= 0 || c.Penalty < 0 {
		return fmt.Errorf("cache: TLB needs a positive page size and non-negative penalty")
	}
	if c.Ways < 0 || c.Ways > c.Entries || (c.Ways > 0 && c.Entries%c.Ways != 0) {
		return fmt.Errorf("cache: TLB ways %d must divide entries %d", c.Ways, c.Entries)
	}
	return nil
}

// tlb is the data TLB: a set-associative array with per-set LRU
// replacement, laid out as two parallel slices (page numbers and
// recency stamps) indexed set*ways+way. It replaces the seed's
// map[int64]int64, whose every hit paid a hash, a probe, and a map
// write to refresh the stamp; here a hit is a short scan of a
// contiguous page-number row and one stamp store, and the structure
// never allocates after construction.
//
// Replacement is exact LRU within a set, ties broken toward the lowest
// slot. For a fully-associative geometry (Ways == 0) this reproduces
// the map implementation's evict-the-minimum-stamp behaviour — and is
// deterministic where the map's tie-break depended on iteration order.
type tlb struct {
	penalty int64

	pageShift uint  // log2(PageSize) when PageSize is a power of two
	pageSize  int64 // divisor for the general path; 0 selects the shift path

	sets    int64
	ways    int64
	setMask int64 // sets-1 when sets is a power of two, else -1

	pages  []int64 // sets*ways page numbers; -1 marks an empty slot
	stamps []int64 // parallel recency stamps (h.now at last touch)
}

// newTLB builds the array TLB for a validated config with positive
// Entries.
func newTLB(cfg TLBConfig) *tlb {
	ways := int64(cfg.Entries)
	if cfg.Ways > 0 {
		ways = int64(cfg.Ways)
	}
	sets := int64(cfg.Entries) / ways
	t := &tlb{
		penalty:  cfg.Penalty,
		pageSize: cfg.PageSize,
		sets:     sets,
		ways:     ways,
		setMask:  -1,
		pages:    make([]int64, sets*ways),
		stamps:   make([]int64, sets*ways),
	}
	if cfg.PageSize&(cfg.PageSize-1) == 0 {
		t.pageShift = uint(bits.TrailingZeros64(uint64(cfg.PageSize)))
		t.pageSize = 0
	}
	if sets&(sets-1) == 0 {
		t.setMask = sets - 1
	}
	t.reset()
	return t
}

// reset empties every slot without reallocating.
func (t *tlb) reset() {
	for i := range t.pages {
		t.pages[i] = -1
		t.stamps[i] = 0
	}
}

// pageOf returns addr's page number.
func (t *tlb) pageOf(addr memsys.Addr) int64 {
	if t.pageSize == 0 {
		return int64(addr) >> t.pageShift
	}
	return int64(addr) / t.pageSize
}

// setBase returns the first slot index of page's set.
func (t *tlb) setBase(page int64) int64 {
	if t.setMask >= 0 {
		return (page & t.setMask) * t.ways
	}
	return (page % t.sets) * t.ways
}

// probe returns the slot holding page, or -1, without refreshing its
// recency — the prefetch-drop check must not disturb LRU order.
func (t *tlb) probe(page int64) int64 {
	base := t.setBase(page)
	for w := int64(0); w < t.ways; w++ {
		if t.pages[base+w] == page {
			return base + w
		}
	}
	return -1
}

// touch reports whether page is mapped, refreshing its recency stamp
// on a hit. Hits are swapped to the front of their set so a page in
// steady use is found on the first compare; the stamps travel with the
// pages, so eviction order is unaffected by the physical shuffle.
func (t *tlb) touch(page, now int64) bool {
	base := t.setBase(page)
	for w := int64(0); w < t.ways; w++ {
		slot := base + w
		if t.pages[slot] == page {
			t.stamps[slot] = now
			if slot != base {
				t.pages[slot] = t.pages[base]
				t.pages[base] = page
				t.stamps[slot], t.stamps[base] = t.stamps[base], now
			}
			return true
		}
	}
	return false
}

// insert maps page, evicting the set's LRU entry (lowest slot on a
// stamp tie) when no slot is free.
func (t *tlb) insert(page, now int64) {
	base := t.setBase(page)
	victim := base
	for w := int64(0); w < t.ways; w++ {
		slot := base + w
		if t.pages[slot] < 0 {
			victim = slot
			break
		}
		if t.stamps[slot] < t.stamps[victim] {
			victim = slot
		}
	}
	t.pages[victim] = page
	t.stamps[victim] = now
}
