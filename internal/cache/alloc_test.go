package cache

import (
	"testing"

	"ccl/internal/memsys"
)

// TestAccessNoAllocs pins the tentpole property of the demand path: a
// demand access never allocates, on any of the named hierarchies. The
// access pattern mixes block-spanning loads and stores across a window
// larger than every cache so hits, misses, evictions, TLB misses, and
// the split path are all exercised.
func TestAccessNoAllocs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"paper", PaperHierarchy()},
		{"scaled", ScaledHierarchy(16)},
		{"rsim", RSIMHierarchy()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := New(tc.cfg)
			var addr memsys.Addr
			allocs := testing.AllocsPerRun(10_000, func() {
				h.Access(addr, 8, Load)
				h.Access(addr+3, 16, Store)
				// Stride past a block and a page boundary over time.
				addr = (addr + 4093) % (4 << 20)
			})
			if allocs != 0 {
				t.Fatalf("Access allocated %v times per run, want 0", allocs)
			}
		})
	}
}

// TestPrefetchNoAllocs covers the software- and hardware-prefetch
// install paths, which share the demand path's state but run through
// install/prefetchInto rather than installProbed.
func TestPrefetchNoAllocs(t *testing.T) {
	cfg := RSIMHierarchy()
	cfg.HWPrefetch = true
	h := New(cfg)
	var addr memsys.Addr
	allocs := testing.AllocsPerRun(10_000, func() {
		h.Prefetch(addr)
		h.PrefetchFree(addr + 512)
		h.Access(addr+1024, 8, Load)
		addr = (addr + 8191) % (4 << 20)
	})
	if allocs != 0 {
		t.Fatalf("prefetch paths allocated %v times per run, want 0", allocs)
	}
}
