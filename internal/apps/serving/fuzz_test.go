package serving

import (
	"errors"
	"sort"
	"testing"

	"ccl/internal/cclerr"
	"ccl/internal/machine"
)

// FuzzServingOps drives all three serving structures — sharing one
// machine, as a serving process would — from raw bytes. The first
// byte picks the layout/placement variants, then each 3-byte group
// becomes one op. The replay must never panic, every failure must be
// a typed cclerr error, results must match the reference models, and
// the structural invariants must hold at every checkpoint.
func FuzzServingOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x05, 0x00, 0x00, 0x05, 0x00})
	// Every op kind, on the colored-KV + split-LRU variant.
	f.Add([]byte{0x44,
		0x01, 0x05, 0x10, // kv put
		0x00, 0x05, 0x00, // kv get
		0x02, 0x05, 0x00, // kv delete
		0x04, 0x07, 0x22, // lru put
		0x03, 0x07, 0x00, // lru get
		0x05, 0x30, 0x31, // pq push
		0x06, 0x00, 0x00, // pq pop
		0x07, 0x00, 0x00, // invariants
	})
	// Fill-heavy stream: drives eviction, resize, and the full-queue
	// guard.
	f.Add([]byte{0x13,
		0x01, 0x01, 0x01, 0x01, 0x02, 0x02, 0x01, 0x03, 0x03, 0x01, 0x04, 0x04,
		0x01, 0x05, 0x05, 0x01, 0x06, 0x06, 0x01, 0x07, 0x07, 0x01, 0x08, 0x08,
		0x04, 0x01, 0x01, 0x04, 0x02, 0x02, 0x04, 0x03, 0x03, 0x04, 0x04, 0x04,
		0x04, 0x05, 0x05, 0x04, 0x06, 0x06, 0x05, 0x10, 0x01, 0x05, 0x11, 0x02,
		0x05, 0x12, 0x03, 0x07, 0x00, 0x00,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel := int(data[0])
		kvCfg := kvVariants()[sel%5]
		kvCfg.Slots = 8
		lruCfg := lruVariants()[(sel/5)%4]
		lruCfg.Capacity = 4
		lruCfg.IndexSlots = 16
		arity := []int64{2, 4, 8, 16}[(sel/20)%4]

		m := machine.NewScaled(16)
		kv, err := NewKV(m, kvCfg)
		if err != nil {
			t.Fatalf("NewKV: %v", err)
		}
		lru, err := NewLRU(m, lruCfg)
		if err != nil {
			t.Fatalf("NewLRU: %v", err)
		}
		pq, err := NewPQueue(m, PQConfig{Arity: arity, Cap: 16})
		if err != nil {
			t.Fatalf("NewPQueue: %v", err)
		}

		kvModel := map[uint32]int64{}
		lruModel := newLRUModel(4)
		var pqModel []int64 // priorities, sorted

		typed := func(op string, err error) {
			t.Helper()
			if cclerr.Class(err) == "" {
				t.Fatalf("%s returned an unclassified error: %v", op, err)
			}
		}
		for off := 1; off+3 <= len(data); off += 3 {
			op, b1, b2 := data[off], data[off+1], data[off+2]
			key := uint32(b1%32) + 1
			val := int64(b1)<<8 | int64(b2)
			switch op % 8 {
			case 0:
				got, ok := kv.Get(key)
				want, wok := kvModel[key]
				if ok != wok || (ok && got != want) {
					t.Fatalf("kv.Get(%d) = (%d, %v), model (%d, %v)", key, got, ok, want, wok)
				}
			case 1:
				if err := kv.Put(key, val); err != nil {
					typed("kv.Put", err)
					break
				}
				kvModel[key] = val
			case 2:
				ok := kv.Delete(key)
				_, wok := kvModel[key]
				if ok != wok {
					t.Fatalf("kv.Delete(%d) = %v, model %v", key, ok, wok)
				}
				delete(kvModel, key)
			case 3:
				got, ok := lru.Get(key)
				want, wok := lruModel.get(key)
				if ok != wok || (ok && got != want) {
					t.Fatalf("lru.Get(%d) = (%d, %v), model (%d, %v)", key, got, ok, want, wok)
				}
			case 4:
				if err := lru.Put(key, val); err != nil {
					typed("lru.Put", err)
					break
				}
				lruModel.put(key, val)
			case 5:
				err := pq.Push(int64(b1), int64(b2))
				if len(pqModel) >= 16 {
					if !errors.Is(err, cclerr.ErrOutOfMemory) {
						t.Fatalf("pq.Push on full queue: %v, want ErrOutOfMemory", err)
					}
					break
				}
				if err != nil {
					typed("pq.Push", err)
					break
				}
				pqModel = append(pqModel, int64(b1))
				sort.Slice(pqModel, func(a, b int) bool { return pqModel[a] < pqModel[b] })
			case 6:
				pri, _, ok := pq.Pop()
				if len(pqModel) == 0 {
					if ok {
						t.Fatalf("pq.Pop on empty queue returned %d", pri)
					}
					break
				}
				if !ok || pri != pqModel[0] {
					t.Fatalf("pq.Pop = (%d, %v), model min %d", pri, ok, pqModel[0])
				}
				pqModel = pqModel[1:]
			case 7:
				for _, err := range []error{kv.CheckInvariants(), lru.CheckInvariants(), pq.CheckInvariants()} {
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if kv.Len() != int64(len(kvModel)) || lru.Len() != int64(len(lruModel.order)) || pq.Len() != int64(len(pqModel)) {
			t.Fatalf("final sizes (%d, %d, %d), models (%d, %d, %d)",
				kv.Len(), lru.Len(), pq.Len(), len(kvModel), len(lruModel.order), len(pqModel))
		}
		for _, err := range []error{kv.CheckInvariants(), lru.CheckInvariants(), pq.CheckInvariants()} {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

// FuzzZipfGen checks the generator over its whole parameter surface:
// construction either fails with a typed error or yields a generator
// whose draws are in [1, n] and bit-identical across identically
// seeded instances.
func FuzzZipfGen(f *testing.F) {
	f.Add(int64(1), uint16(990), uint32(1000))
	f.Add(int64(-7), uint16(0), uint32(1))
	f.Add(int64(42), uint16(65535), uint32(0))
	f.Fuzz(func(t *testing.T, seed int64, sBits uint16, n uint32) {
		s := float64(sBits) / 1000 // 0 .. 65.535, straddling the max-exponent bound
		a, err := NewZipf(seed, s, int64(n))
		if err != nil {
			if !errors.Is(err, cclerr.ErrInvalidArg) {
				t.Fatalf("NewZipf(%d, %v, %d): error %v, want ErrInvalidArg", seed, s, n, err)
			}
			return
		}
		b, err := NewZipf(seed, s, int64(n))
		if err != nil {
			t.Fatalf("second NewZipf with accepted params failed: %v", err)
		}
		for i := 0; i < 200; i++ {
			ka, kb := a.Next(), b.Next()
			if ka != kb {
				t.Fatalf("draw %d: %d != %d across identically seeded generators", i, ka, kb)
			}
			if ka < 1 || ka > n {
				t.Fatalf("draw %d: key %d outside [1, %d]", i, ka, n)
			}
		}
	})
}
