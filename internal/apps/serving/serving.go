// Package serving is the traffic-shaped workload family over the
// simulated heap: an open-addressing key/value store (KV), an
// intrusive LRU cache (LRU), and a cache-line-aligned d-ary heap
// priority queue (PQueue), each with tunable layout and placement so
// the ccmalloc clustering and coloring machinery can be raced against
// conventional allocation under skewed request streams.
//
// The paper's benchmarks are scientific codes; these structures model
// the hot path of a web-serving tier instead — hash probes, recency
// maintenance, and timer management hammered by Zipfian-distributed
// keys (Zipf). Every runtime access goes through the Mem seam, so the
// same operation code runs charged against a machine.Machine during
// measurement, uncharged against the raw arena for invariant checks
// (ArenaMem), or recorded for oracle replay (TraceRecorder).
//
// Layout variants follow the conventions of internal/split and
// internal/layout: AoS entries co-locate key metadata with payloads,
// hot/cold splitting segregates the probe-hot header words from the
// payload bytes, ccmalloc placement hint-chains allocations into
// shared cache blocks, and coloring confines the hot set to a
// reserved stripe of the last-level cache.
package serving

import (
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/trace"
)

// Mem is the slice of machine.Machine the serving structures touch
// simulated memory through. Construction-time writes go straight to
// the arena (uncharged, like any benchmark's setup phase); runtime
// operations use a Mem so every probe, link update, and payload copy
// is charged to the cache hierarchy — or observed by a test double.
type Mem interface {
	Load32(a memsys.Addr) uint32
	Store32(a memsys.Addr, v uint32)
	LoadAddr(a memsys.Addr) memsys.Addr
	StoreAddr(a memsys.Addr, v memsys.Addr)
	LoadInt(a memsys.Addr) int64
	StoreInt(a memsys.Addr, v int64)
	Tick(n int64)
}

// arenaMem adapts a raw arena to the Mem seam: accesses hit simulated
// memory directly, bypass the cache hierarchy, and cost no cycles.
// Invariant checkers use it so verification does not perturb the
// measured access stream.
type arenaMem struct{ a *memsys.Arena }

func (w arenaMem) Load32(p memsys.Addr) uint32        { return w.a.Load32(p) }
func (w arenaMem) Store32(p memsys.Addr, v uint32)    { w.a.Store32(p, v) }
func (w arenaMem) LoadAddr(p memsys.Addr) memsys.Addr { return w.a.LoadAddr(p) }
func (w arenaMem) StoreAddr(p, v memsys.Addr)         { w.a.StoreAddr(p, v) }
func (w arenaMem) LoadInt(p memsys.Addr) int64        { return w.a.LoadInt(p) }
func (w arenaMem) StoreInt(p memsys.Addr, v int64)    { w.a.StoreInt(p, v) }
func (w arenaMem) Tick(int64)                         {}

// ArenaMem returns a Mem that reads and writes the arena directly
// without charging the cache hierarchy — the view invariant checks
// and test oracles use.
func ArenaMem(a *memsys.Arena) Mem { return arenaMem{a} }

// TraceRecorder forwards every access to the wrapped machine while
// appending a trace.Record, so a serving run can be replayed through
// the event-level differential oracle (oracle.Diff) exactly as the
// structures issued it.
type TraceRecorder struct {
	m    *machine.Machine
	recs []trace.Record
}

// NewTraceRecorder wraps m.
func NewTraceRecorder(m *machine.Machine) *TraceRecorder { return &TraceRecorder{m: m} }

func (r *TraceRecorder) rec(k trace.Kind, a memsys.Addr, size int64) {
	r.recs = append(r.recs, trace.Record{Kind: k, Addr: a, Size: size})
}

// Load32 implements Mem.
func (r *TraceRecorder) Load32(a memsys.Addr) uint32 {
	r.rec(trace.Load, a, 4)
	return r.m.Load32(a)
}

// Store32 implements Mem.
func (r *TraceRecorder) Store32(a memsys.Addr, v uint32) {
	r.rec(trace.Store, a, 4)
	r.m.Store32(a, v)
}

// LoadAddr implements Mem.
func (r *TraceRecorder) LoadAddr(a memsys.Addr) memsys.Addr {
	r.rec(trace.Load, a, memsys.PtrSize)
	return r.m.LoadAddr(a)
}

// StoreAddr implements Mem.
func (r *TraceRecorder) StoreAddr(a memsys.Addr, v memsys.Addr) {
	r.rec(trace.Store, a, memsys.PtrSize)
	r.m.StoreAddr(a, v)
}

// LoadInt implements Mem.
func (r *TraceRecorder) LoadInt(a memsys.Addr) int64 {
	r.rec(trace.Load, a, 8)
	return r.m.LoadInt(a)
}

// StoreInt implements Mem.
func (r *TraceRecorder) StoreInt(a memsys.Addr, v int64) {
	r.rec(trace.Store, a, 8)
	r.m.StoreInt(a, v)
}

// Tick implements Mem; compute cycles are a timing overlay, not part
// of the recorded demand stream.
func (r *TraceRecorder) Tick(n int64) { r.m.Tick(n) }

// Trace returns the captured access stream paired with the machine's
// geometry, ready for oracle.Diff.
func (r *TraceRecorder) Trace() trace.Trace {
	return trace.Trace{Config: r.m.Cache.Config(), Records: r.recs}
}

// Len returns the number of recorded accesses.
func (r *TraceRecorder) Len() int { return len(r.recs) }
