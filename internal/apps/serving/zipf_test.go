package serving

import (
	"errors"
	"math"
	"testing"

	"ccl/internal/cclerr"
)

func TestZipfValidation(t *testing.T) {
	bad := []struct {
		s float64
		n int64
	}{
		{0.99, 0}, {0.99, -5}, {0.99, MaxZipfKeys + 1},
		{-0.1, 100}, {math.NaN(), 100}, {math.Inf(1), 100}, {65, 100},
	}
	for _, c := range bad {
		if _, err := NewZipf(1, c.s, c.n); !errors.Is(err, cclerr.ErrInvalidArg) {
			t.Errorf("NewZipf(s=%v, n=%d): error %v, want ErrInvalidArg", c.s, c.n, err)
		}
	}
}

func TestZipfBoundedAndDeterministic(t *testing.T) {
	for _, s := range []float64{0, 0.8, 0.99, 1.2, 3} {
		a, err := NewZipf(42, s, 1000)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewZipf(42, s, 1000)
		for i := 0; i < 5000; i++ {
			ka, kb := a.Next(), b.Next()
			if ka != kb {
				t.Fatalf("s=%v draw %d: %d != %d across identically seeded generators", s, i, ka, kb)
			}
			if ka < 1 || int64(ka) > 1000 {
				t.Fatalf("s=%v draw %d: key %d outside [1, 1000]", s, i, ka)
			}
		}
	}
}

// TestZipfSkew checks the distribution actually skews: with s=0.99
// the hottest decile of keys must dominate, and raising s must
// concentrate it further.
func TestZipfSkew(t *testing.T) {
	share := func(s float64) float64 {
		z, err := NewZipf(7, s, 1000)
		if err != nil {
			t.Fatal(err)
		}
		top := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			if z.Next() <= 100 {
				top++
			}
		}
		return float64(top) / draws
	}
	low, mid, high := share(0.8), share(0.99), share(1.2)
	if !(low < mid && mid < high) {
		t.Fatalf("top-decile share not increasing in s: %.3f (0.8), %.3f (0.99), %.3f (1.2)", low, mid, high)
	}
	if mid < 0.5 {
		t.Fatalf("s=0.99 top-decile share %.3f, want skewed (>0.5)", mid)
	}
}
