package serving

import (
	"math"
	"math/rand"
	"sort"

	"ccl/internal/cclerr"
)

// MaxZipfKeys bounds the key-space size a generator will precompute a
// cumulative table for, so fuzzed parameters cannot force an
// unbounded allocation.
const MaxZipfKeys = 1 << 21

// maxZipfExponent bounds the skew parameter; beyond this every draw
// collapses onto key 1 anyway and the power computation degenerates.
const maxZipfExponent = 64

// Zipf is a deterministic seeded Zipfian key generator: key k in
// [1, n] is drawn with probability proportional to 1/k^s. Unlike
// math/rand's generator it accepts any skew s >= 0 — the serving
// workloads sweep s in {0.8, 0.99, 1.2}, and two of those are below
// the s > 1 floor rand.Zipf imposes. Draws use inversion on a
// precomputed cumulative table, so the stream is a pure function of
// (seed, s, n).
type Zipf struct {
	rng *rand.Rand
	cum []float64
	n   int64
	s   float64
}

// NewZipf builds a generator over keys [1, n] with skew s, seeded for
// reproducibility. It fails with cclerr.ErrInvalidArg for a
// non-positive or oversized n, or a negative, NaN, infinite, or
// absurdly large s.
func NewZipf(seed int64, s float64, n int64) (*Zipf, error) {
	if n < 1 || n > MaxZipfKeys {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewZipf: key space %d outside [1, %d]", n, MaxZipfKeys)
	}
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 || s > maxZipfExponent {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewZipf: skew %v outside [0, %d]", s, maxZipfExponent)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := int64(1); k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cum: cum, n: n, s: s}, nil
}

// N returns the key-space size.
func (z *Zipf) N() int64 { return z.n }

// S returns the skew parameter.
func (z *Zipf) S() float64 { return z.s }

// Next draws the next key in [1, n]. Key 1 is the hottest; rank k
// has probability proportional to 1/k^s.
func (z *Zipf) Next() uint32 {
	u := z.rng.Float64() * z.cum[len(z.cum)-1]
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return uint32(i + 1)
}
