package serving

import (
	"fmt"
	"reflect"
	"testing"

	"ccl/internal/cache"
	"ccl/internal/machine"
)

// The determinism regression: each workload, run twice from the same
// seed on fresh machines, must produce bit-identical workload stats,
// cache counters, and clocks. This is the property the golden serving
// table and the parallel-equivalence bench test stand on.

type servingRun struct {
	work  WorkloadStats
	cache cache.Stats
	now   int64
}

func runKVOnce(t *testing.T, cfg KVConfig, w KVWorkload) servingRun {
	t.Helper()
	m := machine.NewScaled(16)
	cfg.Slots = 1024
	kv, err := NewKV(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := WarmKV(kv, w.Keys); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	st, err := RunKV(kv, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return servingRun{work: st, cache: m.Stats(), now: m.Now()}
}

func TestKVDeterminism(t *testing.T) {
	w := KVWorkload{Seed: 7, S: 0.99, Keys: 600, Ops: 4000, PutEvery: 8}
	for _, cfg := range kvVariants() {
		cfg := cfg
		t.Run(fmt.Sprintf("%v-%v", cfg.Layout, cfg.Placement), func(t *testing.T) {
			a, b := runKVOnce(t, cfg, w), runKVOnce(t, cfg, w)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two identically seeded runs diverged:\n  %+v\n  %+v", a, b)
			}
			if a.work.Hits == 0 || a.work.Misses == 0 {
				t.Fatalf("workload degenerate: %+v (want both hits and misses)", a.work)
			}
		})
	}
}

func runLRUOnce(t *testing.T, cfg LRUConfig, w LRUWorkload) servingRun {
	t.Helper()
	m := machine.NewScaled(16)
	cfg.Capacity = 256
	cfg.IndexSlots = 2048
	c, err := NewLRU(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	st, err := RunLRU(c, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return servingRun{work: st, cache: m.Stats(), now: m.Now()}
}

func TestLRUDeterminism(t *testing.T) {
	w := LRUWorkload{Seed: 11, S: 0.99, Keys: 1024, Ops: 4000}
	for _, cfg := range lruVariants() {
		cfg := cfg
		t.Run(fmt.Sprintf("split=%v-%v", cfg.Split, cfg.Placement), func(t *testing.T) {
			a, b := runLRUOnce(t, cfg, w), runLRUOnce(t, cfg, w)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two identically seeded runs diverged:\n  %+v\n  %+v", a, b)
			}
			if a.work.Hits == 0 || a.work.Misses == 0 {
				t.Fatalf("workload degenerate: %+v (want both hits and misses)", a.work)
			}
		})
	}
}

func runPQOnce(t *testing.T, arity int64, w PQWorkload) servingRun {
	t.Helper()
	m := machine.NewScaled(16)
	q, err := NewPQueue(m, PQConfig{Arity: arity, Cap: w.Fill + 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := FillPQ(q, w); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	st, err := RunPQ(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return servingRun{work: st, cache: m.Stats(), now: m.Now()}
}

func TestPQDeterminism(t *testing.T) {
	w := PQWorkload{Seed: 13, S: 0.99, Fill: 2048, Ops: 4000}
	for _, arity := range []int64{2, 4, 8} {
		arity := arity
		t.Run(fmt.Sprintf("arity=%d", arity), func(t *testing.T) {
			a, b := runPQOnce(t, arity, w), runPQOnce(t, arity, w)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two identically seeded runs diverged:\n  %+v\n  %+v", a, b)
			}
			if a.work.Ops != w.Ops {
				t.Fatalf("hold model ran %d ops, want %d", a.work.Ops, w.Ops)
			}
		})
	}
}
