package serving

import (
	"errors"
	"fmt"
	"testing"

	"ccl/internal/cclerr"
	"ccl/internal/faults"
	"ccl/internal/machine"
)

// The fault sweep: scheduled arena-growth and cluster-placement
// failures across the KV resize and LRU evict/rebuild paths. Every
// provoked failure must be a typed, fault-classified error; the
// structure must stay consistent (copy-then-commit), every
// previously acknowledged write must survive, and once the scheduled
// fault has fired the structure must serve again.

// checkInjected fails the test unless err is a classified fault
// injection.
func checkInjected(t *testing.T, op string, err error) {
	t.Helper()
	if !errors.Is(err, cclerr.ErrFaultInjected) {
		t.Fatalf("%s failed with a non-injected error: %v", op, err)
	}
	if cclerr.Class(err) == "" {
		t.Fatalf("%s returned an unclassified error: %v", op, err)
	}
}

// sweepKV drives puts 1..keys through a store with one scheduled
// fault and verifies the degradation contract at the failure point.
func sweepKV(t *testing.T, arm func(*faults.Injector, *machine.Machine) KVConfig, n int64) (faulted bool) {
	t.Helper()
	m := machine.NewScaled(16)
	in := faults.NewInjector().FailNth(faults.ArenaGrow, n).FailNth(faults.PlaceCluster, n)
	cfg := arm(in, m)
	kv, err := NewKV(m, cfg)
	if err != nil {
		checkInjected(t, "NewKV", err)
		return true
	}
	acked := map[uint32]int64{}
	const keys = 400
	recovered := false
	for k := uint32(1); k <= keys; k++ {
		v := valueFor(k, int64(k))
		if err := kv.Put(k, v); err != nil {
			checkInjected(t, fmt.Sprintf("Put(%d)", k), err)
			faulted = true
			if ierr := kv.CheckInvariants(); ierr != nil {
				t.Fatalf("store inconsistent after injected Put(%d) failure: %v", k, ierr)
			}
			for ak, av := range acked {
				if got, ok := kv.Get(ak); !ok || got != av {
					t.Fatalf("acked key %d lost after injected failure: (%d, %v)", ak, got, ok)
				}
			}
			continue
		}
		if faulted {
			recovered = true
		}
		acked[k] = v
	}
	if faulted && !recovered {
		t.Fatal("store never recovered after the scheduled fault")
	}
	if err := kv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return faulted
}

// TestKVFaultSweep sweeps the fault ordinal across the resize path
// for both failure points. Low ordinals hit construction, middle ones
// the doubling resizes, high ones fall after the run (no fault, which
// is fine — the sweep's job is covering the schedule space).
func TestKVFaultSweep(t *testing.T) {
	armGrow := func(in *faults.Injector, m *machine.Machine) KVConfig {
		in.ArmArena(m.Arena)
		return KVConfig{Layout: KVSplit, Placement: KVCCMalloc, Slots: 8}
	}
	armPlace := func(in *faults.Injector, m *machine.Machine) KVConfig {
		return KVConfig{Layout: KVSplit, Placement: KVColored, Slots: 8,
			PlaceGuard: func() error { return in.Check(faults.PlaceCluster) }}
	}
	anyGrow, anyPlace := false, false
	for n := int64(1); n <= 12; n++ {
		anyGrow = sweepKV(t, armGrow, n) || anyGrow
		anyPlace = sweepKV(t, armPlace, n) || anyPlace
	}
	if !anyGrow {
		t.Error("no arena-grow schedule ever fired on the KV resize path")
	}
	if !anyPlace {
		t.Error("no place-cluster schedule ever fired on the KV placement path")
	}
	// A placement veto mid-resize must surface as a typed placement
	// failure, not a silent degradation: colored placement is the
	// structure's contract.
	m := machine.NewScaled(16)
	kv, err := NewKV(m, KVConfig{Layout: KVSplit, Placement: KVColored, Slots: 8,
		PlaceGuard: func() error { return cclerr.ErrFaultInjected }})
	if !errors.Is(err, cclerr.ErrPlacementFailed) {
		t.Fatalf("NewKV with vetoing guard: (%v, %v), want ErrPlacementFailed", kv, err)
	}
}

// TestLRUFaultSweep sweeps arena-growth failures across the LRU's
// insert/evict/rebuild cycle, and place-cluster vetoes across its
// hinted placements — which degrade to conventional placement rather
// than fail, mirroring ccmalloc's own contract.
func TestLRUFaultSweep(t *testing.T) {
	anyFault := false
	for n := int64(1); n <= 12; n++ {
		m := machine.NewScaled(16)
		in := faults.NewInjector().FailNth(faults.ArenaGrow, n)
		in.ArmArena(m.Arena)
		c, err := NewLRU(m, LRUConfig{Capacity: 8, IndexSlots: 32, Placement: LRUCCMalloc, Split: true})
		if err != nil {
			checkInjected(t, "NewLRU", err)
			anyFault = true
			continue
		}
		acked := map[uint32]int64{}
		faulted, recovered := false, false
		for k := uint32(1); k <= 200; k++ {
			v := valueFor(k, int64(k))
			if err := c.Put(k, v); err != nil {
				checkInjected(t, fmt.Sprintf("Put(%d)", k), err)
				faulted = true
				anyFault = true
				if ierr := c.CheckInvariants(); ierr != nil {
					t.Fatalf("n=%d: cache inconsistent after injected Put(%d) failure: %v", n, k, ierr)
				}
				continue
			}
			if faulted {
				recovered = true
			}
			acked[k] = v
		}
		if faulted && !recovered {
			t.Fatalf("n=%d: cache never recovered after the scheduled fault", n)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// The most recently acked keys up to capacity must be resident
		// with their acked values.
		st := c.Stats()
		for k := uint32(200); k > 200-uint32(st.Len); k-- {
			if v, ok := acked[k]; ok {
				if got, gok := c.Get(k); !gok || got != v {
					t.Fatalf("n=%d: resident key %d lost: (%d, %v)", n, k, got, gok)
				}
			}
		}
	}
	if !anyFault {
		t.Error("no arena-grow schedule ever fired on the LRU path")
	}

	// Place-cluster vetoes degrade hinted placements without failing
	// the op.
	m := machine.NewScaled(16)
	in := faults.NewInjector()
	for i := int64(1); i <= 64; i++ {
		in.FailNth(faults.PlaceCluster, i*2) // every other hinted placement
	}
	c, err := NewLRU(m, LRUConfig{Capacity: 16, Placement: LRUCCMalloc,
		PlaceGuard: func() error { return in.Check(faults.PlaceCluster) }})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(1); k <= 100; k++ {
		if err := c.Put(k, int64(k)); err != nil {
			t.Fatalf("Put(%d) failed under degrading vetoes: %v", k, err)
		}
	}
	if st := c.Stats(); st.PlaceDegraded == 0 {
		t.Fatal("no hinted placement was ever degraded")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
