package serving

import (
	"fmt"
	"math/rand"
	"testing"

	"ccl/internal/machine"
	"ccl/internal/shrink"
)

func lruVariants() []LRUConfig {
	return []LRUConfig{
		{Split: false, Placement: LRUMalloc},
		{Split: false, Placement: LRUCCMalloc},
		{Split: true, Placement: LRUMalloc},
		{Split: true, Placement: LRUCCMalloc},
	}
}

type lruOp struct {
	Kind byte // 0 get, 1 put
	Key  uint32
	Val  int64
}

// lruModel is the reference: a map plus an explicit MRU-first recency
// order with the same eviction rule (insert at capacity evicts the
// last key).
type lruModel struct {
	cap   int
	vals  map[uint32]int64
	order []uint32 // MRU first
}

func newLRUModel(cap int) *lruModel {
	return &lruModel{cap: cap, vals: map[uint32]int64{}}
}

func (m *lruModel) touch(key uint32) {
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.order = append([]uint32{key}, m.order...)
}

func (m *lruModel) get(key uint32) (int64, bool) {
	v, ok := m.vals[key]
	if ok {
		m.touch(key)
	}
	return v, ok
}

func (m *lruModel) put(key uint32, val int64) {
	if _, ok := m.vals[key]; !ok && len(m.order) >= m.cap {
		victim := m.order[len(m.order)-1]
		m.order = m.order[:len(m.order)-1]
		delete(m.vals, victim)
	}
	m.vals[key] = val
	m.touch(key)
}

// lruMismatch replays ops against a fresh cache and the reference
// model, comparing results, exact MRU order, and invariants after
// every op. Capacity 8 with a 32-slot index forces eviction churn and
// tombstone-purge rebuilds.
func lruMismatch(cfg LRUConfig, ops []lruOp) string {
	m := machine.NewScaled(16)
	cfg.Capacity = 8
	cfg.IndexSlots = 32
	c, err := NewLRU(m, cfg)
	if err != nil {
		return fmt.Sprintf("NewLRU: %v", err)
	}
	model := newLRUModel(8)
	for i, op := range ops {
		switch op.Kind % 2 {
		case 0:
			got, ok := c.Get(op.Key)
			want, wok := model.get(op.Key)
			if ok != wok || (ok && got != want) {
				return fmt.Sprintf("op %d: Get(%d) = (%d, %v), model (%d, %v)", i, op.Key, got, ok, want, wok)
			}
		case 1:
			if err := c.Put(op.Key, op.Val); err != nil {
				return fmt.Sprintf("op %d: Put(%d): %v", i, op.Key, err)
			}
			model.put(op.Key, op.Val)
		}
		if c.Len() != int64(len(model.order)) {
			return fmt.Sprintf("op %d: Len %d, model %d", i, c.Len(), len(model.order))
		}
		entries := c.entryAddrs()
		if len(entries) != len(model.order) {
			return fmt.Sprintf("op %d: list holds %d entries, model %d", i, len(entries), len(model.order))
		}
		for j, e := range entries {
			if key := c.arena.Load32(e.Add(lruOffKey)); key != model.order[j] {
				return fmt.Sprintf("op %d: recency position %d holds key %d, model %d", i, j, key, model.order[j])
			}
		}
		if err := c.CheckInvariants(); err != nil {
			return fmt.Sprintf("op %d: %v", i, err)
		}
	}
	return ""
}

// TestLRUPropertyModelEquivalence checks every variant against the
// reference model — including exact eviction order — under random op
// sequences, shrinking failures.
func TestLRUPropertyModelEquivalence(t *testing.T) {
	for _, cfg := range lruVariants() {
		cfg := cfg
		t.Run(fmt.Sprintf("split=%v-%v", cfg.Split, cfg.Placement), func(t *testing.T) {
			gen := func(rng *rand.Rand) []lruOp {
				ops := make([]lruOp, 150+rng.Intn(100))
				for i := range ops {
					ops[i] = lruOp{Kind: byte(rng.Intn(2)), Key: uint32(rng.Intn(24) + 1), Val: rng.Int63()}
				}
				return ops
			}
			fails := func(ops []lruOp) bool { return lruMismatch(cfg, ops) != "" }
			shrink.Check(t, 0x11c0+int64(cfg.Placement)*2+b2i(cfg.Split), 20, gen, fails)
		})
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestLRURebuildsHappen pins the tombstone-purge path: heavy eviction
// churn through a tight index must trigger at least one rebuild, and
// the cache must stay consistent across it.
func TestLRURebuildsHappen(t *testing.T) {
	m := machine.NewScaled(16)
	c, err := NewLRU(m, LRUConfig{Capacity: 8, IndexSlots: 32})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(1); k <= 200; k++ {
		if err := c.Put(k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Rebuilds == 0 {
		t.Fatalf("no index rebuilds after %d evictions", st.Evictions)
	}
	if st.Evictions != st.Inserts-st.Len {
		t.Fatalf("evictions %d, want inserts-len = %d", st.Evictions, st.Inserts-st.Len)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLRUTypedErrors covers configuration rejection.
func TestLRUTypedErrors(t *testing.T) {
	m := machine.NewScaled(16)
	if _, err := NewLRU(m, LRUConfig{Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewLRU(m, LRUConfig{Capacity: 8, IndexSlots: 24}); err == nil {
		t.Fatal("non-power-of-two index accepted")
	}
	if _, err := NewLRU(m, LRUConfig{Capacity: 8, IndexSlots: 8}); err == nil {
		t.Fatal("index smaller than 2*capacity accepted")
	}
	if _, err := NewLRU(m, LRUConfig{Capacity: 8, Placement: LRUPlacement(9)}); err == nil {
		t.Fatal("unknown placement accepted")
	}
}
