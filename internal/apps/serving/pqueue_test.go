package serving

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ccl/internal/cclerr"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/shrink"
)

type pqOp struct {
	Kind byte // 0 push, 1 pop
	Pri  int64
	Pay  int64
}

// pqMismatch replays ops against a fresh queue and a sorted reference
// multiset, checking pop order, the (pri, payload) pairing, and the
// heap invariant after every op.
func pqMismatch(arity int64, ops []pqOp) string {
	m := machine.NewScaled(16)
	q, err := NewPQueue(m, PQConfig{Arity: arity, Cap: 64})
	if err != nil {
		return fmt.Sprintf("NewPQueue: %v", err)
	}
	type elem struct{ pri, pay int64 }
	var model []elem // sorted by pri, stable-insertion among equals is not required
	for i, op := range ops {
		switch op.Kind % 2 {
		case 0:
			err := q.Push(op.Pri, op.Pay)
			if len(model) >= 64 {
				if !errors.Is(err, cclerr.ErrOutOfMemory) {
					return fmt.Sprintf("op %d: push on full queue: %v, want ErrOutOfMemory", i, err)
				}
				break
			}
			if err != nil {
				return fmt.Sprintf("op %d: Push: %v", i, err)
			}
			model = append(model, elem{op.Pri, op.Pay})
			sort.Slice(model, func(a, b int) bool { return model[a].pri < model[b].pri })
		case 1:
			pri, pay, ok := q.Pop()
			if len(model) == 0 {
				if ok {
					return fmt.Sprintf("op %d: pop on empty queue returned (%d, %d)", i, pri, pay)
				}
				break
			}
			if !ok {
				return fmt.Sprintf("op %d: pop on %d-element queue returned !ok", i, len(model))
			}
			if pri != model[0].pri {
				return fmt.Sprintf("op %d: popped pri %d, model min %d", i, pri, model[0].pri)
			}
			// Equal priorities may pop in any order; find the matching
			// (pri, pay) pair among the tied front run.
			found := -1
			for j := 0; j < len(model) && model[j].pri == pri; j++ {
				if model[j].pay == pay {
					found = j
					break
				}
			}
			if found < 0 {
				return fmt.Sprintf("op %d: popped payload %d not paired with pri %d in model", i, pay, pri)
			}
			model = append(model[:found], model[found+1:]...)
		}
		if q.Len() != int64(len(model)) {
			return fmt.Sprintf("op %d: Len %d, model %d", i, q.Len(), len(model))
		}
		if err := q.CheckInvariants(); err != nil {
			return fmt.Sprintf("op %d: %v", i, err)
		}
	}
	return ""
}

// TestPQPropertyModelEquivalence checks each arity against the sorted
// multiset model under random push/pop sequences, shrinking failures.
func TestPQPropertyModelEquivalence(t *testing.T) {
	for _, arity := range []int64{2, 4, 8, 16} {
		arity := arity
		t.Run(fmt.Sprintf("arity=%d", arity), func(t *testing.T) {
			gen := func(rng *rand.Rand) []pqOp {
				ops := make([]pqOp, 150+rng.Intn(100))
				for i := range ops {
					// Push-biased so the queue fills and deep sift paths run.
					ops[i] = pqOp{Kind: byte(rng.Intn(3) / 2), Pri: int64(rng.Intn(32)), Pay: rng.Int63()}
				}
				return ops
			}
			fails := func(ops []pqOp) bool { return pqMismatch(arity, ops) != "" }
			shrink.Check(t, 0x60+arity, 20, gen, fails)
		})
	}
}

// TestPQSortedDrain pushes a permutation and verifies a full drain
// pops priorities in nondecreasing order with payloads intact.
func TestPQSortedDrain(t *testing.T) {
	for _, arity := range []int64{2, 4, 8} {
		m := machine.NewScaled(16)
		q, err := NewPQueue(m, PQConfig{Arity: arity, Cap: 512})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		want := map[int64]int64{}
		for i := int64(0); i < 512; i++ {
			pri := rng.Int63n(1 << 40)
			for want[pri] != 0 {
				pri++
			}
			want[pri] = ^i
			if err := q.Push(pri, ^i); err != nil {
				t.Fatal(err)
			}
		}
		prev := int64(-1)
		for q.Len() > 0 {
			pri, pay, ok := q.Pop()
			if !ok {
				t.Fatalf("arity %d: pop failed with %d left", arity, q.Len())
			}
			if pri < prev {
				t.Fatalf("arity %d: pop order violated: %d after %d", arity, pri, prev)
			}
			if want[pri] != pay {
				t.Fatalf("arity %d: pri %d carries payload %d, want %d", arity, pri, pay, want[pri])
			}
			prev = pri
		}
	}
}

// TestPQAlignment verifies element 1 — the start of the first sibling
// group — lands on a last-level block boundary, so a 4-ary group is
// exactly one 64-byte line.
func TestPQAlignment(t *testing.T) {
	m := machine.NewScaled(16)
	q, err := NewPQueue(m, PQConfig{Arity: 4, Cap: 64})
	if err != nil {
		t.Fatal(err)
	}
	block := layout.FromLevel(m.Cache.LastLevel()).BlockSize
	if got := int64(q.elem(1)) % block; got != 0 {
		t.Fatalf("element 1 at %v, offset %d into a %d-byte block", q.elem(1), got, block)
	}
}

// TestPQTypedErrors covers configuration rejection and the empty-pop
// contract.
func TestPQTypedErrors(t *testing.T) {
	m := machine.NewScaled(16)
	for _, cfg := range []PQConfig{
		{Arity: 1, Cap: 8}, {Arity: 3, Cap: 8}, {Arity: 32, Cap: 8},
		{Arity: 4, Cap: 0}, {Arity: 4, Cap: maxPQCap + 1},
	} {
		if _, err := NewPQueue(m, cfg); !errors.Is(err, cclerr.ErrInvalidArg) {
			t.Errorf("NewPQueue(%+v): error %v, want ErrInvalidArg", cfg, err)
		}
	}
	q, err := NewPQueue(m, PQConfig{Arity: 4, Cap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}
