package serving

import (
	"ccl/internal/cclerr"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/telemetry"
)

// Element geometry: priority and payload, one line-eighth each on the
// 64-byte last level. The backing array is placed so every d-element
// sibling group of a 4-ary heap occupies exactly one cache line (and
// an 8-ary group exactly two aligned lines): elements are 16 bytes,
// the children of slot i are slots d*i+1 .. d*i+d, and sibling groups
// start at indices congruent to 1 mod d — so aligning element 1 to a
// block boundary aligns every group.
const (
	pqElemSize = 16
	pqOffPri   = 0
	pqOffPay   = 8
	maxPQArity = 16
	maxPQCap   = 1 << 22
)

// PQConfig configures a priority queue.
type PQConfig struct {
	// Arity is the heap's branching factor d: a power of two in
	// [2, 16]. 4 matches a 64-byte line exactly at 16-byte elements.
	Arity int64
	// Cap is the maximum element count, fixed at construction — a
	// serving timer wheel is provisioned, not elastic.
	Cap int64
}

// PQStats summarizes a queue.
type PQStats struct {
	Len, Cap, Arity int64
	Pushes, Pops    int64
	Compares        int64
}

// PQueue is an implicit d-ary min-heap over a cache-line-aligned
// array in simulated memory, the serving family's timer/priority
// queue. All runtime accesses go through the Mem seam.
type PQueue struct {
	m     Mem
	arena *memsys.Arena
	base  memsys.Addr
	arity int64
	cap   int64
	n     int64

	pushes, pops, compares int64
}

// NewPQueue builds an empty queue over m's arena, aligning the
// element array so sibling groups match cache lines. Configuration
// errors are typed cclerr.ErrInvalidArg; arena exhaustion propagates
// as cclerr.ErrOutOfMemory.
func NewPQueue(m *machine.Machine, cfg PQConfig) (*PQueue, error) {
	if cfg.Arity < 2 || cfg.Arity > maxPQArity || cfg.Arity&(cfg.Arity-1) != 0 {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewPQueue: arity %d must be a power of two in [2, %d]", cfg.Arity, maxPQArity)
	}
	if cfg.Cap < 1 || cfg.Cap > maxPQCap {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewPQueue: cap %d outside [1, %d]", cfg.Cap, maxPQCap)
	}
	block := layout.FromLevel(m.Cache.LastLevel()).BlockSize
	if block < pqElemSize {
		block = pqElemSize
	}
	if _, err := m.Arena.AlignTo(block); err != nil {
		return nil, err
	}
	start, err := m.Arena.Grow(block + cfg.Cap*pqElemSize)
	if err != nil {
		return nil, err
	}
	// Element 1 (the first sibling group) lands on the block boundary
	// at start+block; element 0, the root, sits just before it.
	base := start.Add(block - pqElemSize)
	return &PQueue{m: m, arena: m.Arena, base: base, arity: cfg.Arity, cap: cfg.Cap}, nil
}

// UseMem redirects the queue's runtime accesses through w — a
// TraceRecorder capturing the stream for oracle replay, or a test
// double.
func (q *PQueue) UseMem(w Mem) { q.m = w }

func (q *PQueue) elem(i int64) memsys.Addr { return q.base.Add(i * pqElemSize) }

// Push inserts (pri, payload), sifting up with a hole so each level
// costs one element read and at most one element write. A full queue
// fails with cclerr.ErrOutOfMemory.
func (q *PQueue) Push(pri, payload int64) error {
	if q.n >= q.cap {
		return cclerr.Errorf(cclerr.ErrOutOfMemory,
			"serving: pqueue full at %d elements", q.cap)
	}
	hole := q.n
	q.n++
	for hole > 0 {
		parent := (hole - 1) / q.arity
		q.m.Tick(1)
		q.compares++
		ppri := q.m.LoadInt(q.elem(parent).Add(pqOffPri))
		if ppri <= pri {
			break
		}
		ppay := q.m.LoadInt(q.elem(parent).Add(pqOffPay))
		q.m.StoreInt(q.elem(hole).Add(pqOffPri), ppri)
		q.m.StoreInt(q.elem(hole).Add(pqOffPay), ppay)
		hole = parent
	}
	q.m.StoreInt(q.elem(hole).Add(pqOffPri), pri)
	q.m.StoreInt(q.elem(hole).Add(pqOffPay), payload)
	q.pushes++
	return nil
}

// Pop removes and returns the minimum element; ok is false on an
// empty queue. The sift-down scans each d-element sibling group —
// one aligned line at arity 4 — for the minimum child.
func (q *PQueue) Pop() (pri, payload int64, ok bool) {
	if q.n == 0 {
		return 0, 0, false
	}
	pri = q.m.LoadInt(q.elem(0).Add(pqOffPri))
	payload = q.m.LoadInt(q.elem(0).Add(pqOffPay))
	q.n--
	q.pops++
	if q.n == 0 {
		return pri, payload, true
	}
	hpri := q.m.LoadInt(q.elem(q.n).Add(pqOffPri))
	hpay := q.m.LoadInt(q.elem(q.n).Add(pqOffPay))
	hole := int64(0)
	for {
		first := q.arity*hole + 1
		if first >= q.n {
			break
		}
		minIdx, minPri := first, q.m.LoadInt(q.elem(first).Add(pqOffPri))
		q.m.Tick(1)
		q.compares++
		last := first + q.arity
		if last > q.n {
			last = q.n
		}
		for c := first + 1; c < last; c++ {
			q.m.Tick(1)
			q.compares++
			cpri := q.m.LoadInt(q.elem(c).Add(pqOffPri))
			if cpri < minPri {
				minIdx, minPri = c, cpri
			}
		}
		q.m.Tick(1)
		q.compares++
		if minPri >= hpri {
			break
		}
		mpay := q.m.LoadInt(q.elem(minIdx).Add(pqOffPay))
		q.m.StoreInt(q.elem(hole).Add(pqOffPri), minPri)
		q.m.StoreInt(q.elem(hole).Add(pqOffPay), mpay)
		hole = minIdx
	}
	q.m.StoreInt(q.elem(hole).Add(pqOffPri), hpri)
	q.m.StoreInt(q.elem(hole).Add(pqOffPay), hpay)
	return pri, payload, true
}

// Len returns the element count.
func (q *PQueue) Len() int64 { return q.n }

// Stats summarizes the queue.
func (q *PQueue) Stats() PQStats {
	return PQStats{Len: q.n, Cap: q.cap, Arity: q.arity,
		Pushes: q.pushes, Pops: q.pops, Compares: q.compares}
}

// RegisterRegions registers the element array with rm and returns its
// label ("<prefix>.elems").
func (q *PQueue) RegisterRegions(rm *telemetry.RegionMap, prefix string) string {
	label := prefix + ".elems"
	rm.Register(label, q.base, q.cap*pqElemSize)
	rm.SetFieldMap(label, layout.MustFieldMap("pq-elem", pqElemSize,
		layout.Field{Name: "pri", Offset: pqOffPri, Size: 8},
		layout.Field{Name: "payload", Offset: pqOffPay, Size: 8},
	))
	return label
}

// CheckInvariants verifies the heap property against simulated memory
// without charging the cache hierarchy. Violations fail with
// cclerr.ErrCorruptStructure.
func (q *PQueue) CheckInvariants() error {
	w := ArenaMem(q.arena)
	for i := int64(1); i < q.n; i++ {
		parent := (i - 1) / q.arity
		pp := w.LoadInt(q.elem(parent).Add(pqOffPri))
		cp := w.LoadInt(q.elem(i).Add(pqOffPri))
		if pp > cp {
			return cclerr.Errorf(cclerr.ErrCorruptStructure,
				"serving: pqueue element %d (pri %d) under parent %d (pri %d)", i, cp, parent, pp)
		}
	}
	return nil
}
