package serving

import (
	"fmt"
	"math/rand"
	"testing"

	"ccl/internal/machine"
	"ccl/internal/shrink"
	"ccl/internal/telemetry"
)

// kvVariants enumerates every valid layout x placement combination.
func kvVariants() []KVConfig {
	return []KVConfig{
		{Layout: KVAoS, Placement: KVMalloc},
		{Layout: KVAoS, Placement: KVCCMalloc},
		{Layout: KVSplit, Placement: KVMalloc},
		{Layout: KVSplit, Placement: KVCCMalloc},
		{Layout: KVSplit, Placement: KVColored},
	}
}

type kvOp struct {
	Kind byte // 0 get, 1 put, 2 delete
	Key  uint32
	Val  int64
}

// kvMismatch replays ops against a fresh store and a Go map,
// returning a description of the first divergence ("" when
// equivalent). The key range is tiny so probe chains collide, deletes
// leave tombstones, and the 8-slot initial table resizes repeatedly.
func kvMismatch(cfg KVConfig, ops []kvOp) string {
	m := machine.NewScaled(16)
	cfg.Slots = 8
	kv, err := NewKV(m, cfg)
	if err != nil {
		return fmt.Sprintf("NewKV: %v", err)
	}
	model := map[uint32]int64{}
	for i, op := range ops {
		switch op.Kind % 3 {
		case 0:
			got, ok := kv.Get(op.Key)
			want, wok := model[op.Key]
			if ok != wok || (ok && got != want) {
				return fmt.Sprintf("op %d: Get(%d) = (%d, %v), model (%d, %v)", i, op.Key, got, ok, want, wok)
			}
		case 1:
			if err := kv.Put(op.Key, op.Val); err != nil {
				return fmt.Sprintf("op %d: Put(%d): %v", i, op.Key, err)
			}
			model[op.Key] = op.Val
		case 2:
			ok := kv.Delete(op.Key)
			_, wok := model[op.Key]
			if ok != wok {
				return fmt.Sprintf("op %d: Delete(%d) = %v, model %v", i, op.Key, ok, wok)
			}
			delete(model, op.Key)
		}
		if kv.Len() != int64(len(model)) {
			return fmt.Sprintf("op %d: Len %d, model %d", i, kv.Len(), len(model))
		}
		if err := kv.CheckInvariants(); err != nil {
			return fmt.Sprintf("op %d: %v", i, err)
		}
	}
	for k, want := range model {
		if got, ok := kv.Get(k); !ok || got != want {
			return fmt.Sprintf("final: Get(%d) = (%d, %v), model %d", k, got, ok, want)
		}
	}
	return ""
}

// TestKVPropertyModelEquivalence checks every variant against the Go
// map model under random op sequences, shrinking failures.
func TestKVPropertyModelEquivalence(t *testing.T) {
	for _, cfg := range kvVariants() {
		cfg := cfg
		t.Run(fmt.Sprintf("%v-%v", cfg.Layout, cfg.Placement), func(t *testing.T) {
			gen := func(rng *rand.Rand) []kvOp {
				ops := make([]kvOp, 150+rng.Intn(100))
				for i := range ops {
					ops[i] = kvOp{Kind: byte(rng.Intn(3)), Key: uint32(rng.Intn(48) + 1), Val: rng.Int63()}
				}
				return ops
			}
			fails := func(ops []kvOp) bool { return kvMismatch(cfg, ops) != "" }
			shrink.Check(t, 0x5eed0+int64(cfg.Layout)*10+int64(cfg.Placement), 20, gen, fails)
		})
	}
}

// TestKVColoredStripeDiscipline asserts every live header group of a
// colored store lives entirely in the hot stripe and every payload
// group entirely in the cold remainder, across resizes. The segment
// allocators' claimed extents legitimately span both stripes (grow
// claims whole way periods and skips the wrong-color gaps), so the
// discipline holds for allocated groups, not raw extents.
func TestKVColoredStripeDiscipline(t *testing.T) {
	m := machine.NewScaled(16)
	kv, err := NewKV(m, KVConfig{Layout: KVSplit, Placement: KVColored, Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(1); k <= 300; k++ {
		if err := kv.Put(k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	if kv.Stats().Resizes == 0 {
		t.Fatal("expected at least one resize")
	}
	col, ok := kv.Coloring()
	if !ok {
		t.Fatal("colored store reports no coloring")
	}
	if len(kv.HotExtents()) == 0 || len(kv.ColdExtents()) == 0 {
		t.Fatal("colored store reports no claimed extents")
	}
	for g, a := range kv.tab.groups {
		for b := a; b < a.Add(kv.groupBytes); b = b.Add(col.BlockSize) {
			if !col.IsHot(b) {
				t.Fatalf("header group %d block %v in cold stripe", g, b)
			}
		}
	}
	for g, a := range kv.tab.cold {
		for b := a; b < a.Add(kv.coldGroupBytes); b = b.Add(col.BlockSize) {
			if col.IsHot(b) {
				t.Fatalf("payload group %d block %v in hot stripe", g, b)
			}
		}
	}
	if err := kv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestKVRegionRegistrationNonOverlap registers every variant's
// regions (RegisterRange panics on overlap, so completing is the
// assertion) and checks the registered extents cover the table.
func TestKVRegionRegistrationNonOverlap(t *testing.T) {
	for _, cfg := range kvVariants() {
		cfg.Slots = 64
		m := machine.NewScaled(16)
		kv, err := NewKV(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint32(1); k <= 40; k++ {
			if err := kv.Put(k, int64(k)); err != nil {
				t.Fatal(err)
			}
		}
		col := telemetry.Attach(m.Cache)
		hot := kv.RegisterRegions(col.Regions(), "kv")
		if _, ok := kv.Get(7); !ok {
			t.Fatal("key 7 missing")
		}
		rep := col.Report()
		found := false
		for _, r := range rep.Regions {
			if r.Label == hot && r.Accesses > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v-%v: hot region %q saw no traffic", cfg.Layout, cfg.Placement, hot)
		}
	}
}

// TestKVFullTable drives a store into the no-empty-slot guard: with
// growth made impossible the put must fail typed, not hang.
func TestKVTypedErrors(t *testing.T) {
	m := machine.NewScaled(16)
	if _, err := NewKV(m, KVConfig{Slots: 7}); err == nil {
		t.Fatal("non-power-of-two slots accepted")
	}
	if _, err := NewKV(m, KVConfig{Layout: KVAoS, Placement: KVColored, Slots: 8}); err == nil {
		t.Fatal("colored AoS accepted")
	}
}
