package serving

import (
	"testing"

	"ccl/internal/cache"
	"ccl/internal/machine"
	"ccl/internal/oracle"
)

// The differential satellite: record the serving structures' demand
// stream through the Mem seam and replay it through the event-level
// oracle. Agreement on every access event and every cumulative
// counter proves the production hierarchy simulated this workload
// family correctly — on more than one geometry, since replacement and
// write policy bugs hide in configurations.

// assocGeometry is a second, set-associative geometry: 2-way L1 over
// a 4-way write-back L2, nothing like the direct-mapped scaled
// hierarchy the rest of the suite runs on.
func assocGeometry() cache.Config {
	return cache.Config{
		Levels: []cache.LevelConfig{
			{Name: "L1", Size: 1 << 10, Assoc: 2, BlockSize: 32, Latency: 1},
			{Name: "L2", Size: 16 << 10, Assoc: 4, BlockSize: 64, Latency: 6, WriteBack: true},
		},
		MemLatency: 64,
	}
}

// recordServingMix builds all three structures on m, redirects them
// through one shared TraceRecorder, and drives a small mixed serving
// phase.
func recordServingMix(t *testing.T, m *machine.Machine) *TraceRecorder {
	t.Helper()
	kv, err := NewKV(m, KVConfig{Layout: KVSplit, Placement: KVCCMalloc, Slots: 256})
	if err != nil {
		t.Fatal(err)
	}
	lru, err := NewLRU(m, LRUConfig{Capacity: 32, Split: true, Placement: LRUCCMalloc})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := NewPQueue(m, PQConfig{Arity: 4, Cap: 256})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder(m)
	kv.UseMem(rec)
	lru.UseMem(rec)
	pq.UseMem(rec)

	if err := WarmKV(kv, 120); err != nil {
		t.Fatal(err)
	}
	if _, err := RunKV(kv, KVWorkload{Seed: 3, S: 0.99, Keys: 120, Ops: 600, PutEvery: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLRU(lru, LRUWorkload{Seed: 5, S: 0.99, Keys: 128, Ops: 600}); err != nil {
		t.Fatal(err)
	}
	w := PQWorkload{Seed: 9, S: 0.99, Fill: 200, Ops: 600}
	if err := FillPQ(pq, w); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPQ(pq, w); err != nil {
		t.Fatal(err)
	}
	for _, err := range []error{kv.CheckInvariants(), lru.CheckInvariants(), pq.CheckInvariants()} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return rec
}

// TestServingOracleDifferential replays the recorded mixed-serving
// stream on two geometries.
func TestServingOracleDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *machine.Machine
	}{
		{"scaled-direct", machine.NewScaled(16)},
		{"set-assoc", machine.New(assocGeometry())},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rec := recordServingMix(t, tc.m)
			if rec.Len() == 0 {
				t.Fatal("serving mix recorded no accesses")
			}
			if d := oracle.Diff(rec.Trace()); d != nil {
				t.Fatalf("serving stream diverged from the oracle: %v", d)
			}
		})
	}
}
