package serving

import (
	"fmt"

	"ccl/internal/cclerr"
	"ccl/internal/ccmalloc"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/telemetry"
)

// KVLayout selects how a slot's probe-hot header (key + state) and
// its payload are laid out relative to each other.
type KVLayout int

const (
	// KVAoS co-locates header and payload in one array-of-structures
	// slot: a positive lookup touches one line, but every probe step
	// drags the full payload-width slot through the cache.
	KVAoS KVLayout = iota
	// KVSplit segregates headers into dense block-sized groups with
	// payloads in a parallel cold array, the internal/split
	// convention: probes touch 8 headers per line instead of 1 slot.
	KVSplit
)

// String names the layout.
func (l KVLayout) String() string {
	switch l {
	case KVAoS:
		return "aos"
	case KVSplit:
		return "split"
	default:
		return fmt.Sprintf("KVLayout(%d)", int(l))
	}
}

// KVPlacement selects the allocator that places the table's bucket
// groups.
type KVPlacement int

const (
	// KVMalloc places groups with the conventional dlmalloc-style
	// allocator: boundary tags dilute the stride, so block-sized
	// groups straddle cache lines.
	KVMalloc KVPlacement = iota
	// KVCCMalloc hint-chains group allocations through ccmalloc so
	// consecutive groups share cache blocks and pages, block-aligned.
	KVCCMalloc
	// KVColored places header groups in the reserved hot stripe of
	// the last-level cache and payload groups in the cold remainder
	// (split layout only), so probe traffic cannot conflict with
	// payload traffic in a direct-mapped cache.
	KVColored
)

// String names the placement.
func (p KVPlacement) String() string {
	switch p {
	case KVMalloc:
		return "malloc"
	case KVCCMalloc:
		return "ccmalloc"
	case KVColored:
		return "colored"
	default:
		return fmt.Sprintf("KVPlacement(%d)", int(p))
	}
}

// Slot geometry. The header is one 64-bit word (key in the low half,
// state in the high half) so a probe step costs a single access; the
// payload is KVValueBytes of response data. An AoS slot is exactly
// one 64-byte line; split payloads are padded to the line so a
// payload read never straddles.
const (
	kvHeaderBytes = 8
	// KVValueBytes is the payload carried per key.
	KVValueBytes = 56
	kvValueWords = KVValueBytes / 8
	kvAoSSlot    = kvHeaderBytes + KVValueBytes

	kvStateEmpty = 0
	kvStateLive  = 1
	kvStateTomb  = 2
)

// KVConfig configures a store.
type KVConfig struct {
	Layout    KVLayout
	Placement KVPlacement
	// Slots is the initial table capacity: a power of two. The table
	// grows by doubling when live+tombstone occupancy crosses 3/4.
	Slots int64
	// ColorFrac is the hot-stripe fraction for KVColored; 0 selects
	// the 0.5 default.
	ColorFrac float64
	// PlaceGuard, when set, is consulted before every cache-conscious
	// group placement (KVCCMalloc, KVColored) — the fault-injection
	// seam for the place-cluster point. A guard error aborts the
	// allocation with cclerr.ErrPlacementFailed.
	PlaceGuard func() error
}

// kvTable is one generation of the table: the directory of group
// addresses plus occupancy counters. Resize builds a complete new
// generation and commits it with a single swap.
type kvTable struct {
	slots, mask int64
	live, tombs int64
	// groups holds the slot groups (AoS) or header groups (split),
	// one block-sized group of groupSlots slots each.
	groups []memsys.Addr
	// cold holds the split layout's payload groups, parallel to
	// groups; nil for AoS.
	cold []memsys.Addr
}

// KVStats summarizes a store.
type KVStats struct {
	Slots, Live, Tombstones int64
	Resizes                 int64
	Probes                  int64 // total header loads across all ops
	HeapBytes               int64 // arena bytes claimed for the table
}

// KV is an open-addressing (linear probing, tombstone deletion)
// hash table over the simulated heap, the serving family's key/value
// store. All runtime accesses go through the Mem seam.
type KV struct {
	m     Mem
	arena *memsys.Arena
	cfg   KVConfig
	geo   layout.Geometry

	alloc           heap.Allocator // KVMalloc / KVCCMalloc group source
	hotSeg, coldSeg *layout.SegmentAllocator
	coloring        layout.Coloring
	groupSlots      int64 // slots per group
	groupBytes      int64 // header-group byte size
	coldGroupBytes  int64 // payload-group byte size (split)
	tab             kvTable
	resizes, probes int64
}

// NewKV builds an empty store over m's arena. Construction writes are
// uncharged (setup phase); pass the returned store a stream of ops to
// generate measured traffic. Configuration errors are typed
// cclerr.ErrInvalidArg; allocation failures propagate the allocator's
// typed error.
func NewKV(m *machine.Machine, cfg KVConfig) (*KV, error) {
	if cfg.Slots <= 0 || cfg.Slots&(cfg.Slots-1) != 0 {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewKV: slots %d must be a positive power of two", cfg.Slots)
	}
	if cfg.Placement == KVColored && cfg.Layout != KVSplit {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewKV: colored placement requires the split layout")
	}
	geo := layout.FromLevel(m.Cache.LastLevel())
	kv := &KV{m: m, arena: m.Arena, cfg: cfg, geo: geo}
	switch cfg.Layout {
	case KVAoS:
		kv.groupSlots = geo.BlockSize / kvAoSSlot
		if kv.groupSlots < 1 {
			kv.groupSlots = 1
		}
		kv.groupBytes = kv.groupSlots * kvAoSSlot
	case KVSplit:
		kv.groupSlots = geo.BlockSize / kvHeaderBytes
		if kv.groupSlots < 1 {
			kv.groupSlots = 1
		}
		kv.groupBytes = kv.groupSlots * kvHeaderBytes
		kv.coldGroupBytes = kv.groupSlots * geo.BlockSize
	default:
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg, "serving: NewKV: unknown layout %d", int(cfg.Layout))
	}
	if cfg.Slots < kv.groupSlots {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewKV: slots %d smaller than one %d-slot group", cfg.Slots, kv.groupSlots)
	}
	switch cfg.Placement {
	case KVMalloc:
		kv.alloc = heap.New(m.Arena)
	case KVCCMalloc:
		a, err := ccmalloc.New(m.Arena, geo, ccmalloc.Closest, m)
		if err != nil {
			return nil, err
		}
		kv.alloc = a
	case KVColored:
		frac := cfg.ColorFrac
		if frac == 0 {
			frac = 0.5
		}
		c, err := layout.NewColoring(geo, frac)
		if err != nil {
			return nil, err
		}
		kv.coloring = c
		hot, err := layout.NewSegmentAllocator(m.Arena, c, true)
		if err != nil {
			return nil, err
		}
		cold, err := layout.NewSegmentAllocator(m.Arena, c, false)
		if err != nil {
			return nil, err
		}
		kv.hotSeg, kv.coldSeg = hot, cold
	default:
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg, "serving: NewKV: unknown placement %d", int(cfg.Placement))
	}
	t, err := kv.buildTable(cfg.Slots, ArenaMem(m.Arena))
	if err != nil {
		return nil, err
	}
	kv.tab = *t
	return kv, nil
}

// UseMem redirects the store's runtime accesses through w — a
// TraceRecorder capturing the stream for oracle replay, or a test
// double. Construction and allocator metadata are unaffected.
func (kv *KV) UseMem(w Mem) { kv.m = w }

// hash mixes the key; the table index is the low mask bits.
func kvHash(key uint32) int64 {
	h := key * 2654435761
	h ^= h >> 16
	return int64(h)
}

// headerAddr returns the address of slot i's header word in t.
func (kv *KV) headerAddr(t *kvTable, i int64) memsys.Addr {
	g, r := i/kv.groupSlots, i%kv.groupSlots
	if kv.cfg.Layout == KVAoS {
		return t.groups[g].Add(r * kvAoSSlot)
	}
	return t.groups[g].Add(r * kvHeaderBytes)
}

// valueAddr returns the address of slot i's payload in t.
func (kv *KV) valueAddr(t *kvTable, i int64) memsys.Addr {
	g, r := i/kv.groupSlots, i%kv.groupSlots
	if kv.cfg.Layout == KVAoS {
		return t.groups[g].Add(r*kvAoSSlot + kvHeaderBytes)
	}
	return t.cold[g].Add(r * kv.geo.BlockSize)
}

func kvHeader(key uint32, state int64) int64 { return int64(key) | state<<32 }

// checkPlace consults the place guard ahead of a cache-conscious
// placement.
func (kv *KV) checkPlace() error {
	if kv.cfg.PlaceGuard == nil || kv.cfg.Placement == KVMalloc {
		return nil
	}
	if err := kv.cfg.PlaceGuard(); err != nil {
		return fmt.Errorf("serving: kv group placement vetoed: %w: %w", cclerr.ErrPlacementFailed, err)
	}
	return nil
}

// allocGroup places one header group, hint-chained to the previous
// group under KVCCMalloc.
func (kv *KV) allocGroup(prev memsys.Addr) (memsys.Addr, error) {
	switch kv.cfg.Placement {
	case KVCCMalloc:
		return kv.alloc.AllocHint(kv.groupBytes, prev)
	case KVColored:
		return kv.hotSeg.Alloc(kv.groupBytes)
	default:
		return kv.alloc.Alloc(kv.groupBytes)
	}
}

// allocColdGroup places one payload group. Payloads are cold data:
// they go through the conventional path (or the cold stripe), never
// hint-chained.
func (kv *KV) allocColdGroup() (memsys.Addr, error) {
	if kv.cfg.Placement == KVColored {
		return kv.coldSeg.Alloc(kv.coldGroupBytes)
	}
	return kv.alloc.Alloc(kv.coldGroupBytes)
}

// freeGroups releases groups allocated for an uncommitted table
// generation. Segment extents are one-way (no free list); an aborted
// colored generation abandons its extents, costing footprint but
// never correctness.
func (kv *KV) freeGroups(groups, cold []memsys.Addr) {
	if kv.alloc == nil {
		return
	}
	for _, g := range groups {
		_ = kv.alloc.Free(g)
	}
	for _, g := range cold {
		_ = kv.alloc.Free(g)
	}
}

// buildTable allocates and zeroes a table generation of the given
// slot count, writing through w (the arena at construction, the
// machine during a charged resize). On failure every group already
// placed is released and the error — always typed — is returned with
// the live table untouched.
func (kv *KV) buildTable(slots int64, w Mem) (*kvTable, error) {
	n := slots / kv.groupSlots
	t := &kvTable{slots: slots, mask: slots - 1}
	t.groups = make([]memsys.Addr, 0, n)
	if kv.cfg.Layout == KVSplit {
		t.cold = make([]memsys.Addr, 0, n)
	}
	prev := memsys.NilAddr
	for g := int64(0); g < n; g++ {
		if err := kv.checkPlace(); err != nil {
			kv.freeGroups(t.groups, t.cold)
			return nil, err
		}
		ga, err := kv.allocGroup(prev)
		if err != nil {
			kv.freeGroups(t.groups, t.cold)
			return nil, fmt.Errorf("serving: kv table of %d slots: %w", slots, err)
		}
		t.groups = append(t.groups, ga)
		prev = ga
		if kv.cfg.Layout == KVSplit {
			ca, err := kv.allocColdGroup()
			if err != nil {
				kv.freeGroups(t.groups, t.cold)
				return nil, fmt.Errorf("serving: kv table of %d slots: %w", slots, err)
			}
			t.cold = append(t.cold, ca)
		}
	}
	for i := int64(0); i < slots; i++ {
		w.StoreInt(kv.headerAddr(t, i), kvHeader(0, kvStateEmpty))
	}
	return t, nil
}

// find probes t for a live slot holding key, charging one header load
// and one compare cycle per step. The table always keeps at least one
// empty slot, so the probe terminates.
func (kv *KV) find(t *kvTable, w Mem, key uint32) (int64, bool) {
	i := kvHash(key) & t.mask
	for {
		w.Tick(1)
		kv.probes++
		h := w.LoadInt(kv.headerAddr(t, i))
		state := h >> 32
		if state == kvStateEmpty {
			return 0, false
		}
		if state == kvStateLive && uint32(h) == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

// kvSalt derives the per-key payload salt; payload words are
// (value, value^salt, value^2*salt, ...) so integrity checks can
// verify a payload against its key without host-side shadow state.
func kvSalt(key uint32) int64 { return int64(uint64(key) * 0x9e3779b97f4a7c15) }

func (kv *KV) writeValue(t *kvTable, w Mem, i int64, key uint32, val int64) {
	base := kv.valueAddr(t, i)
	salt := kvSalt(key)
	for j := int64(0); j < kvValueWords; j++ {
		w.StoreInt(base.Add(j*8), val^(salt*j))
	}
}

// readValue reads the full payload (a response copy) and returns the
// value word.
func (kv *KV) readValue(t *kvTable, w Mem, i int64) int64 {
	base := kv.valueAddr(t, i)
	v := w.LoadInt(base)
	for j := int64(1); j < kvValueWords; j++ {
		_ = w.LoadInt(base.Add(j * 8))
	}
	return v
}

// putInto inserts or overwrites key in t through w. An insert that
// would consume the table's last empty slot fails with
// cclerr.ErrOutOfMemory: the empty slot is what terminates probes.
func (kv *KV) putInto(t *kvTable, w Mem, key uint32, val int64) error {
	i := kvHash(key) & t.mask
	ins := int64(-1)
	for {
		w.Tick(1)
		kv.probes++
		h := w.LoadInt(kv.headerAddr(t, i))
		state := h >> 32
		if state == kvStateEmpty {
			if ins < 0 {
				if t.live+t.tombs+1 >= t.slots {
					return cclerr.Errorf(cclerr.ErrOutOfMemory,
						"serving: kv table full at %d/%d slots", t.live+t.tombs, t.slots)
				}
				ins = i
			}
			break
		}
		if state == kvStateLive && uint32(h) == key {
			kv.writeValue(t, w, i, key, val)
			return nil
		}
		if state == kvStateTomb && ins < 0 {
			ins = i
		}
		i = (i + 1) & t.mask
	}
	h := w.LoadInt(kv.headerAddr(t, ins))
	if h>>32 == kvStateTomb {
		t.tombs--
	}
	w.StoreInt(kv.headerAddr(t, ins), kvHeader(key, kvStateLive))
	kv.writeValue(t, w, ins, key, val)
	t.live++
	return nil
}

// maybeResize grows (or rehashes in place, purging tombstones) when
// occupancy crosses 3/4. The resize is copy-then-commit: the new
// generation is fully built and populated before the one-swap commit,
// so any failure leaves the live table exactly as it was.
func (kv *KV) maybeResize() error {
	if (kv.tab.live+kv.tab.tombs)*4 < kv.tab.slots*3 {
		return nil
	}
	newSlots := kv.tab.slots
	if kv.tab.live*2 >= kv.tab.slots {
		newSlots *= 2
	}
	return kv.resize(newSlots)
}

func (kv *KV) resize(newSlots int64) error {
	nt, err := kv.buildTable(newSlots, kv.m)
	if err != nil {
		return err
	}
	for i := int64(0); i < kv.tab.slots; i++ {
		kv.m.Tick(1)
		h := kv.m.LoadInt(kv.headerAddr(&kv.tab, i))
		if h>>32 != kvStateLive {
			continue
		}
		key := uint32(h)
		val := kv.readValue(&kv.tab, kv.m, i)
		if err := kv.putInto(nt, kv.m, key, val); err != nil {
			kv.freeGroups(nt.groups, nt.cold)
			return err
		}
	}
	old := kv.tab
	kv.tab = *nt
	kv.resizes++
	kv.freeGroups(old.groups, old.cold)
	return nil
}

// Get looks key up, reading the full payload on a hit.
func (kv *KV) Get(key uint32) (int64, bool) {
	i, ok := kv.find(&kv.tab, kv.m, key)
	if !ok {
		return 0, false
	}
	return kv.readValue(&kv.tab, kv.m, i), true
}

// Put inserts or overwrites key. Failures (resize allocation,
// placement veto, full table) are typed and leave the store intact.
func (kv *KV) Put(key uint32, val int64) error {
	if err := kv.maybeResize(); err != nil {
		return err
	}
	return kv.putInto(&kv.tab, kv.m, key, val)
}

// Delete tombstones key, reporting whether it was present.
func (kv *KV) Delete(key uint32) bool {
	i, ok := kv.find(&kv.tab, kv.m, key)
	if !ok {
		return false
	}
	kv.m.StoreInt(kv.headerAddr(&kv.tab, i), kvHeader(key, kvStateTomb))
	kv.tab.live--
	kv.tab.tombs++
	return true
}

// Len returns the number of live keys.
func (kv *KV) Len() int64 { return kv.tab.live }

// Stats summarizes the store.
func (kv *KV) Stats() KVStats {
	hb := int64(0)
	switch {
	case kv.alloc != nil:
		hb = kv.alloc.HeapBytes()
	case kv.hotSeg != nil:
		hb = kv.hotSeg.Claimed() + kv.coldSeg.Claimed()
	}
	return KVStats{
		Slots: kv.tab.slots, Live: kv.tab.live, Tombstones: kv.tab.tombs,
		Resizes: kv.resizes, Probes: kv.probes, HeapBytes: hb,
	}
}

// RegisterRegions registers the table's extents with rm for
// per-structure miss attribution, attaching field maps for
// field-level profiling, and returns the label of the probe-hot
// region ("<prefix>.buckets" for AoS, "<prefix>.keys" for split).
func (kv *KV) RegisterRegions(rm *telemetry.RegionMap, prefix string) string {
	if kv.cfg.Layout == KVAoS {
		label := prefix + ".buckets"
		rm.RegisterElems(label, append([]memsys.Addr(nil), kv.tab.groups...), kv.groupBytes)
		rm.SetFieldMap(label, layout.MustFieldMap("kv-slot", kvAoSSlot,
			layout.Field{Name: "key", Offset: 0, Size: 4},
			layout.Field{Name: "state", Offset: 4, Size: 4},
			layout.Field{Name: "value", Offset: 8, Size: KVValueBytes},
		))
		return label
	}
	hot := prefix + ".keys"
	rm.RegisterElems(hot, append([]memsys.Addr(nil), kv.tab.groups...), kv.groupBytes)
	rm.SetFieldMap(hot, layout.MustFieldMap("kv-key", kvHeaderBytes,
		layout.Field{Name: "key", Offset: 0, Size: 4},
		layout.Field{Name: "state", Offset: 4, Size: 4},
	))
	cold := prefix + ".values"
	rm.RegisterElems(cold, append([]memsys.Addr(nil), kv.tab.cold...), kv.coldGroupBytes)
	rm.SetFieldMap(cold, layout.MustFieldMap("kv-value", kv.geo.BlockSize,
		layout.Field{Name: "value", Offset: 0, Size: KVValueBytes},
	))
	return hot
}

// Coloring returns the stripe assignment when the store is colored.
func (kv *KV) Coloring() (layout.Coloring, bool) {
	return kv.coloring, kv.cfg.Placement == KVColored
}

// HotExtents returns the header-group extents (colored placement) for
// stripe-discipline assertions.
func (kv *KV) HotExtents() []memsys.AddrRange {
	if kv.hotSeg == nil {
		return nil
	}
	return kv.hotSeg.Extents()
}

// ColdExtents returns the payload-group extents (colored placement).
func (kv *KV) ColdExtents() []memsys.AddrRange {
	if kv.coldSeg == nil {
		return nil
	}
	return kv.coldSeg.Extents()
}

// CheckInvariants verifies the table against simulated memory without
// charging the cache: occupancy counters match a full scan, every
// live key is reachable from its hash bucket, payloads carry their
// key's salt, and colored placements respect the stripe discipline.
// Violations fail with cclerr.ErrCorruptStructure.
func (kv *KV) CheckInvariants() error {
	w := ArenaMem(kv.arena)
	t := &kv.tab
	live, tombs := int64(0), int64(0)
	for i := int64(0); i < t.slots; i++ {
		h := w.LoadInt(kv.headerAddr(t, i))
		key, state := uint32(h), h>>32
		switch state {
		case kvStateEmpty:
		case kvStateTomb:
			tombs++
		case kvStateLive:
			live++
			base := kv.valueAddr(t, i)
			v := w.LoadInt(base)
			salt := kvSalt(key)
			for j := int64(1); j < kvValueWords; j++ {
				if got := w.LoadInt(base.Add(j * 8)); got != v^(salt*j) {
					return cclerr.Errorf(cclerr.ErrCorruptStructure,
						"serving: kv slot %d key %d: payload word %d is %#x, want %#x", i, key, j, got, v^(salt*j))
				}
			}
			if j, ok := kv.findUncharged(t, key); !ok || j != i {
				return cclerr.Errorf(cclerr.ErrCorruptStructure,
					"serving: kv key %d at slot %d unreachable from its probe chain", key, i)
			}
		default:
			return cclerr.Errorf(cclerr.ErrCorruptStructure,
				"serving: kv slot %d: invalid state %d", i, state)
		}
	}
	if live != t.live || tombs != t.tombs {
		return cclerr.Errorf(cclerr.ErrCorruptStructure,
			"serving: kv counters live=%d tombs=%d, scan found live=%d tombs=%d",
			t.live, t.tombs, live, tombs)
	}
	if kv.cfg.Placement == KVColored {
		for _, g := range t.groups {
			if !kv.coloring.IsHot(g) || !kv.coloring.IsHot(g.Add(kv.groupBytes-1)) {
				return cclerr.Errorf(cclerr.ErrCorruptStructure,
					"serving: kv header group %v escapes the hot stripe", g)
			}
		}
		for _, g := range t.cold {
			if kv.coloring.IsHot(g) || kv.coloring.IsHot(g.Add(kv.coldGroupBytes-1)) {
				return cclerr.Errorf(cclerr.ErrCorruptStructure,
					"serving: kv payload group %v intrudes on the hot stripe", g)
			}
		}
	}
	return nil
}

// findUncharged is find against the arena: no cache charges, no
// probe-counter noise.
func (kv *KV) findUncharged(t *kvTable, key uint32) (int64, bool) {
	w := ArenaMem(kv.arena)
	i := kvHash(key) & t.mask
	for {
		h := w.LoadInt(kv.headerAddr(t, i))
		state := h >> 32
		if state == kvStateEmpty {
			return 0, false
		}
		if state == kvStateLive && uint32(h) == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}
