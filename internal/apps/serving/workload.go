package serving

import (
	"math/rand"

	"ccl/internal/cclerr"
)

// The workload drivers turn a seeded Zipfian key stream into
// structure operations. Every driver is a pure function of its
// config: same seed, same structure state, same stats — the property
// the determinism regression suite and the parallel-equivalence bench
// tests lock down.

// WorkloadStats summarizes one driven op stream. Checksum folds every
// value the structure returned, so two runs agree iff the structures
// behaved identically.
type WorkloadStats struct {
	Ops, Hits, Misses, Puts int64
	Checksum                uint64
}

func (s *WorkloadStats) mix(v uint64) {
	s.Checksum = (s.Checksum ^ v) * 0x100000001b3
}

// valueFor derives the payload written for key at op i —
// deterministic, so replays regenerate identical memory images.
func valueFor(key uint32, i int64) int64 {
	return int64(uint64(key)*2862933555777941757 + uint64(i))
}

// PresentKey reports whether the KV warm phase makes key resident.
// Keys divisible by 3 are never inserted, so roughly a third of
// Zipfian lookups miss at every popularity rank — the negative-lookup
// traffic a serving tier's existence checks generate.
func PresentKey(key uint32) bool { return key%3 != 0 }

// KVWorkload is a Zipfian get/put stream over a store.
type KVWorkload struct {
	Seed int64
	S    float64
	// Keys is the Zipfian key space [1, Keys].
	Keys int64
	Ops  int64
	// PutEvery makes every PutEvery-th op an overwrite of a resident
	// key; 0 disables writes.
	PutEvery int64
}

// WarmKV populates kv with every resident key of the [1, keys] space.
func WarmKV(kv *KV, keys int64) error {
	for k := int64(1); k <= keys; k++ {
		if !PresentKey(uint32(k)) {
			continue
		}
		if err := kv.Put(uint32(k), valueFor(uint32(k), 0)); err != nil {
			return err
		}
	}
	return nil
}

// RunKV drives kv with w's op stream. Writes target resident keys
// only (an absent key redirects to a resident neighbor), so occupancy
// — and with it the probe-length distribution — stays fixed across
// the run.
func RunKV(kv *KV, w KVWorkload) (WorkloadStats, error) {
	z, err := NewZipf(w.Seed, w.S, w.Keys)
	if err != nil {
		return WorkloadStats{}, err
	}
	var st WorkloadStats
	for i := int64(0); i < w.Ops; i++ {
		k := z.Next()
		st.Ops++
		if w.PutEvery > 0 && i%w.PutEvery == w.PutEvery-1 {
			if !PresentKey(k) {
				k-- // k%3==0 implies k>=3, and k-1 is resident
			}
			if err := kv.Put(k, valueFor(k, i)); err != nil {
				return st, err
			}
			st.Puts++
			continue
		}
		if v, ok := kv.Get(k); ok {
			st.Hits++
			st.mix(uint64(v))
		} else {
			st.Misses++
		}
	}
	return st, nil
}

// LRUWorkload is a Zipfian cache-aside stream: every miss loads the
// value (deterministically derived) and inserts it, evicting at
// capacity.
type LRUWorkload struct {
	Seed int64
	S    float64
	Keys int64
	Ops  int64
}

// RunLRU drives c with w's op stream.
func RunLRU(c *LRU, w LRUWorkload) (WorkloadStats, error) {
	z, err := NewZipf(w.Seed, w.S, w.Keys)
	if err != nil {
		return WorkloadStats{}, err
	}
	var st WorkloadStats
	for i := int64(0); i < w.Ops; i++ {
		k := z.Next()
		st.Ops++
		if v, ok := c.Get(k); ok {
			st.Hits++
			st.mix(uint64(v))
			continue
		}
		st.Misses++
		if err := c.Put(k, valueFor(k, i)); err != nil {
			return st, err
		}
		st.Puts++
	}
	return st, nil
}

// PQWorkload is the classic hold model over a queue: fill to a steady
// size, then each op pops the minimum timer and re-arms it a Zipfian
// delay later — so the queue's size is constant and every op pays one
// full sift-down plus one sift-up.
type PQWorkload struct {
	Seed int64
	S    float64
	// Fill is the steady-state element count.
	Fill int64
	Ops  int64
}

// pqDelaySpan is the key space the Zipfian delay draw maps into.
const pqDelaySpan = 1 << 16

// FillPQ pushes Fill elements with seeded pseudo-random priorities.
func FillPQ(q *PQueue, w PQWorkload) error {
	rng := rand.New(rand.NewSource(w.Seed))
	for i := int64(0); i < w.Fill; i++ {
		if err := q.Push(rng.Int63n(1<<30), int64(i)); err != nil {
			return err
		}
	}
	return nil
}

// RunPQ drives q with w's hold-model stream. The queue must hold at
// least one element (FillPQ).
func RunPQ(q *PQueue, w PQWorkload) (WorkloadStats, error) {
	z, err := NewZipf(w.Seed+1, w.S, pqDelaySpan)
	if err != nil {
		return WorkloadStats{}, err
	}
	var st WorkloadStats
	for i := int64(0); i < w.Ops; i++ {
		pri, pay, ok := q.Pop()
		if !ok {
			return st, cclerr.Errorf(cclerr.ErrInvalidArg,
				"serving: RunPQ on an empty queue (fill first)")
		}
		st.Ops++
		st.mix(uint64(pri) ^ uint64(pay)<<1)
		if err := q.Push(pri+int64(z.Next()), pay+1); err != nil {
			return st, err
		}
		st.Hits++
	}
	return st, nil
}
