package serving

import (
	"fmt"

	"ccl/internal/cclerr"
	"ccl/internal/ccmalloc"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/telemetry"
)

// LRUPlacement selects the allocator that places LRU entries.
type LRUPlacement int

const (
	// LRUMalloc places entries conventionally.
	LRUMalloc LRUPlacement = iota
	// LRUCCMalloc hint-chains each new entry onto the current MRU
	// head, so recency-adjacent entries cluster into shared blocks —
	// the paper's co-location heuristic applied to temporal locality.
	LRUCCMalloc
)

// String names the placement.
func (p LRUPlacement) String() string {
	switch p {
	case LRUMalloc:
		return "malloc"
	case LRUCCMalloc:
		return "ccmalloc"
	default:
		return fmt.Sprintf("LRUPlacement(%d)", int(p))
	}
}

// Entry geometry. The intrusive list links lead the entry so a
// move-to-front touches the first bytes only; the co-located layout
// appends the payload, the split layout replaces it with a pointer
// into a separate cold allocation.
//
// co-located entry: prev(4) next(4) key(4) pad(4) value(24)  = 40 B
// split link:       prev(4) next(4) key(4) valptr(4)         = 16 B
const (
	lruOffPrev = 0
	lruOffNext = 4
	lruOffKey  = 8
	lruOffVal  = 12 // split: value pointer; co-located: pad

	// LRUValueBytes is the payload carried per cached key.
	LRUValueBytes = 24
	lruValueWords = LRUValueBytes / 8
	lruEntrySize  = 16 + LRUValueBytes
	lruLinkSize   = 16
)

// Index slot: one 64-bit word, key in the low half, the entry address
// in the high half. Address 0 is an empty slot, address 1 a
// tombstone; real entry addresses start at the arena base.
const (
	lruIdxEmpty = 0
	lruIdxTomb  = 1
)

// LRUConfig configures a cache.
type LRUConfig struct {
	// Capacity is the maximum resident entry count; an insert at
	// capacity evicts the tail.
	Capacity int64
	// Split moves payloads out of the entries into a separate cold
	// allocation, leaving a dense 16-byte link node on the hot path.
	Split     bool
	Placement LRUPlacement
	// IndexSlots sizes the open-addressing key index: a power of two,
	// at least 2*Capacity. 0 selects the smallest power of two at or
	// above 4*Capacity.
	IndexSlots int64
	// PlaceGuard, when set, is consulted before every hinted entry
	// placement (LRUCCMalloc). A veto degrades that placement to the
	// conventional path — the op succeeds — mirroring ccmalloc's own
	// degradation contract.
	PlaceGuard func() error
}

// LRUStats summarizes a cache.
type LRUStats struct {
	Len, Capacity      int64
	Hits, Misses       int64
	Inserts, Evictions int64
	Rebuilds           int64 // index tombstone purges
	PlaceDegraded      int64 // hinted placements vetoed by the guard
	IndexTombs         int64
	HeapBytes          int64
}

// LRU is an intrusive least-recently-used cache over the simulated
// heap: a doubly-linked recency list threaded through heap-allocated
// entries, plus an open-addressing index from key to entry address.
// All runtime accesses go through the Mem seam.
type LRU struct {
	m     Mem
	arena *memsys.Arena
	cfg   LRUConfig

	entryAlloc heap.Allocator // entries or link nodes
	valAlloc   heap.Allocator // split payloads
	idxAlloc   heap.Allocator // header + index generations

	hdr      memsys.Addr // head(4) tail(4)
	idx      memsys.Addr
	idxSlots int64
	idxMask  int64
	idxTombs int64
	len      int64

	hits, misses, inserts, evictions, rebuilds, placeDegraded int64
}

// NewLRU builds an empty cache over m's arena. Configuration errors
// are typed cclerr.ErrInvalidArg; allocation failures propagate the
// allocator's typed error.
func NewLRU(m *machine.Machine, cfg LRUConfig) (*LRU, error) {
	if cfg.Capacity < 1 || cfg.Capacity > 1<<20 {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewLRU: capacity %d outside [1, %d]", cfg.Capacity, 1<<20)
	}
	slots := cfg.IndexSlots
	if slots == 0 {
		slots = 4
		for slots < 4*cfg.Capacity {
			slots *= 2
		}
	}
	if slots&(slots-1) != 0 || slots < 2*cfg.Capacity {
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg,
			"serving: NewLRU: index slots %d must be a power of two >= 2*capacity", slots)
	}
	c := &LRU{m: m, arena: m.Arena, cfg: cfg, idxSlots: slots, idxMask: slots - 1}
	c.idxAlloc = heap.New(m.Arena)
	switch cfg.Placement {
	case LRUMalloc:
		c.entryAlloc = heap.New(m.Arena)
	case LRUCCMalloc:
		a, err := ccmalloc.New(m.Arena, layout.FromLevel(m.Cache.LastLevel()), ccmalloc.Closest, m)
		if err != nil {
			return nil, err
		}
		c.entryAlloc = a
	default:
		return nil, cclerr.Errorf(cclerr.ErrInvalidArg, "serving: NewLRU: unknown placement %d", int(cfg.Placement))
	}
	if cfg.Split {
		c.valAlloc = heap.New(m.Arena)
	}
	hdr, err := c.idxAlloc.Alloc(8)
	if err != nil {
		return nil, err
	}
	c.hdr = hdr
	idx, err := c.idxAlloc.Alloc(slots * 8)
	if err != nil {
		return nil, err
	}
	c.idx = idx
	w := ArenaMem(m.Arena)
	w.StoreAddr(hdr.Add(0), memsys.NilAddr)
	w.StoreAddr(hdr.Add(4), memsys.NilAddr)
	for i := int64(0); i < slots; i++ {
		w.StoreInt(idx.Add(i*8), 0)
	}
	return c, nil
}

// UseMem redirects the cache's runtime accesses through w — a
// TraceRecorder capturing the stream for oracle replay, or a test
// double. Construction and allocator metadata are unaffected.
func (c *LRU) UseMem(w Mem) { c.m = w }

func lruIdxWord(key uint32, addr memsys.Addr) int64 {
	return int64(key) | int64(addr)<<32
}

// idxLookup probes the index for key, charging one load and one
// compare cycle per step.
func (c *LRU) idxLookup(base memsys.Addr, key uint32) (slot int64, e memsys.Addr, ok bool) {
	i := kvHash(key) & c.idxMask
	for {
		c.m.Tick(1)
		wrd := c.m.LoadInt(base.Add(i * 8))
		a := memsys.Addr(wrd >> 32)
		if a == lruIdxEmpty {
			return 0, memsys.NilAddr, false
		}
		if a != lruIdxTomb && uint32(wrd) == key {
			return i, a, true
		}
		i = (i + 1) & c.idxMask
	}
}

// idxInsert stores key -> e at the first reusable slot. The caller
// has already established key is absent; capacity invariants
// (len <= idxSlots/2, tombs <= idxSlots/4) guarantee a slot exists.
func (c *LRU) idxInsert(base memsys.Addr, key uint32, e memsys.Addr) {
	i := kvHash(key) & c.idxMask
	for {
		c.m.Tick(1)
		wrd := c.m.LoadInt(base.Add(i * 8))
		a := memsys.Addr(wrd >> 32)
		if a == lruIdxEmpty || a == lruIdxTomb {
			if a == lruIdxTomb && base == c.idx {
				c.idxTombs--
			}
			c.m.StoreInt(base.Add(i*8), lruIdxWord(key, e))
			return
		}
		i = (i + 1) & c.idxMask
	}
}

// idxDelete tombstones key.
func (c *LRU) idxDelete(key uint32) {
	i, _, ok := c.idxLookup(c.idx, key)
	if ok {
		c.m.StoreInt(c.idx.Add(i*8), lruIdxWord(0, lruIdxTomb))
		c.idxTombs++
	}
}

// valueBase resolves the payload address of entry e, chasing the
// value pointer under the split layout.
func (c *LRU) valueBase(e memsys.Addr) memsys.Addr {
	if c.cfg.Split {
		return c.m.LoadAddr(e.Add(lruOffVal))
	}
	return e.Add(16)
}

func (c *LRU) writeValue(e memsys.Addr, key uint32, val int64) {
	base := c.valueBase(e)
	salt := kvSalt(key)
	for j := int64(0); j < lruValueWords; j++ {
		c.m.StoreInt(base.Add(j*8), val^(salt*j))
	}
}

func (c *LRU) readValue(e memsys.Addr) int64 {
	base := c.valueBase(e)
	v := c.m.LoadInt(base)
	for j := int64(1); j < lruValueWords; j++ {
		_ = c.m.LoadInt(base.Add(j * 8))
	}
	return v
}

// moveToFront rotates e to the MRU position.
func (c *LRU) moveToFront(e memsys.Addr) {
	head := c.m.LoadAddr(c.hdr)
	if head == e {
		return
	}
	prev := c.m.LoadAddr(e.Add(lruOffPrev))
	next := c.m.LoadAddr(e.Add(lruOffNext))
	c.m.StoreAddr(prev.Add(lruOffNext), next)
	if !next.IsNil() {
		c.m.StoreAddr(next.Add(lruOffPrev), prev)
	} else {
		c.m.StoreAddr(c.hdr.Add(4), prev)
	}
	c.m.StoreAddr(e.Add(lruOffPrev), memsys.NilAddr)
	c.m.StoreAddr(e.Add(lruOffNext), head)
	c.m.StoreAddr(head.Add(lruOffPrev), e)
	c.m.StoreAddr(c.hdr, e)
}

// pushFront links a fresh entry at the MRU position.
func (c *LRU) pushFront(e memsys.Addr) {
	head := c.m.LoadAddr(c.hdr)
	c.m.StoreAddr(e.Add(lruOffPrev), memsys.NilAddr)
	c.m.StoreAddr(e.Add(lruOffNext), head)
	if !head.IsNil() {
		c.m.StoreAddr(head.Add(lruOffPrev), e)
	} else {
		c.m.StoreAddr(c.hdr.Add(4), e)
	}
	c.m.StoreAddr(c.hdr, e)
}

// evictTail removes the LRU entry and frees its allocations.
func (c *LRU) evictTail() error {
	tail := c.m.LoadAddr(c.hdr.Add(4))
	key := c.m.Load32(tail.Add(lruOffKey))
	c.idxDelete(key)
	prev := c.m.LoadAddr(tail.Add(lruOffPrev))
	if !prev.IsNil() {
		c.m.StoreAddr(prev.Add(lruOffNext), memsys.NilAddr)
	} else {
		c.m.StoreAddr(c.hdr, memsys.NilAddr)
	}
	c.m.StoreAddr(c.hdr.Add(4), prev)
	if c.cfg.Split {
		vp := c.m.LoadAddr(tail.Add(lruOffVal))
		if err := c.valAlloc.Free(vp); err != nil {
			return err
		}
	}
	if err := c.entryAlloc.Free(tail); err != nil {
		return err
	}
	c.len--
	c.evictions++
	return nil
}

// allocEntry places a new entry (and, split, its payload). A place
// guard veto degrades the hinted placement to conventional; an
// allocation failure frees any partial placement and returns the
// typed error with the cache untouched.
func (c *LRU) allocEntry() (e, vp memsys.Addr, err error) {
	size := int64(lruEntrySize)
	if c.cfg.Split {
		size = lruLinkSize
	}
	hint := memsys.NilAddr
	if c.cfg.Placement == LRUCCMalloc {
		hint = c.arena.LoadAddr(c.hdr)
		if !hint.IsNil() && c.cfg.PlaceGuard != nil {
			if verr := c.cfg.PlaceGuard(); verr != nil {
				hint = memsys.NilAddr
				c.placeDegraded++
			}
		}
	}
	if hint.IsNil() {
		e, err = c.entryAlloc.Alloc(size)
	} else {
		e, err = c.entryAlloc.AllocHint(size, hint)
	}
	if err != nil {
		return memsys.NilAddr, memsys.NilAddr, err
	}
	if c.cfg.Split {
		vp, err = c.valAlloc.Alloc(LRUValueBytes)
		if err != nil {
			_ = c.entryAlloc.Free(e)
			return memsys.NilAddr, memsys.NilAddr, err
		}
	}
	return e, vp, nil
}

// rebuildIndex purges tombstones by building a fresh index generation
// and reinserting every resident key from the recency list —
// copy-then-commit, so an allocation failure leaves the old index
// serving.
func (c *LRU) rebuildIndex() error {
	ni, err := c.idxAlloc.Alloc(c.idxSlots * 8)
	if err != nil {
		return fmt.Errorf("serving: lru index rebuild: %w", err)
	}
	for i := int64(0); i < c.idxSlots; i++ {
		c.m.StoreInt(ni.Add(i*8), 0)
	}
	for e := c.m.LoadAddr(c.hdr); !e.IsNil(); e = c.m.LoadAddr(e.Add(lruOffNext)) {
		key := c.m.Load32(e.Add(lruOffKey))
		c.idxInsert(ni, key, e)
	}
	old := c.idx
	c.idx = ni
	c.idxTombs = 0
	c.rebuilds++
	return c.idxAlloc.Free(old)
}

// Get looks key up; a hit rotates the entry to the MRU position and
// reads the full payload.
func (c *LRU) Get(key uint32) (int64, bool) {
	c.m.Tick(1)
	_, e, ok := c.idxLookup(c.idx, key)
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.moveToFront(e)
	return c.readValue(e), true
}

// Put inserts or refreshes key, evicting the LRU entry when at
// capacity. Failures (allocation, rebuild) are typed and leave the
// cache consistent.
func (c *LRU) Put(key uint32, val int64) error {
	c.m.Tick(1)
	if _, e, ok := c.idxLookup(c.idx, key); ok {
		c.writeValue(e, key, val)
		c.moveToFront(e)
		return nil
	}
	if c.idxTombs*4 > c.idxSlots {
		if err := c.rebuildIndex(); err != nil {
			return err
		}
	}
	e, vp, err := c.allocEntry()
	if err != nil {
		return err
	}
	if c.len >= c.cfg.Capacity {
		if eerr := c.evictTail(); eerr != nil {
			return eerr
		}
	}
	c.m.Store32(e.Add(lruOffKey), key)
	if c.cfg.Split {
		c.m.StoreAddr(e.Add(lruOffVal), vp)
	} else {
		c.m.Store32(e.Add(lruOffVal), 0)
	}
	c.writeValue(e, key, val)
	c.idxInsert(c.idx, key, e)
	c.pushFront(e)
	c.len++
	c.inserts++
	return nil
}

// Len returns the resident entry count.
func (c *LRU) Len() int64 { return c.len }

// Stats summarizes the cache.
func (c *LRU) Stats() LRUStats {
	hb := c.entryAlloc.HeapBytes() + c.idxAlloc.HeapBytes()
	if c.valAlloc != nil {
		hb += c.valAlloc.HeapBytes()
	}
	return LRUStats{
		Len: c.len, Capacity: c.cfg.Capacity,
		Hits: c.hits, Misses: c.misses,
		Inserts: c.inserts, Evictions: c.evictions,
		Rebuilds: c.rebuilds, PlaceDegraded: c.placeDegraded,
		IndexTombs: c.idxTombs, HeapBytes: hb,
	}
}

// entryAddrs walks the recency list MRU-first through the arena.
func (c *LRU) entryAddrs() []memsys.Addr {
	w := ArenaMem(c.arena)
	var out []memsys.Addr
	for e := w.LoadAddr(c.hdr); !e.IsNil(); e = w.LoadAddr(e.Add(lruOffNext)) {
		out = append(out, e)
	}
	return out
}

// RegisterRegions registers the cache's extents with rm and returns
// the label of the recency-hot region ("<prefix>.entries"). Entries
// are registered per element at their current addresses; eviction
// churn recycles freed entries through the allocator's free lists, so
// the registration stays representative through a measured phase.
func (c *LRU) RegisterRegions(rm *telemetry.RegionMap, prefix string) string {
	rm.Register(prefix+".head", c.hdr, 8)
	rm.Register(prefix+".index", c.idx, c.idxSlots*8)
	entries := c.entryAddrs()
	label := prefix + ".entries"
	if c.cfg.Split {
		rm.RegisterElems(label, entries, lruLinkSize)
		rm.SetFieldMap(label, layout.MustFieldMap("lru-link", lruLinkSize,
			layout.Field{Name: "prev", Offset: lruOffPrev, Size: 4},
			layout.Field{Name: "next", Offset: lruOffNext, Size: 4},
			layout.Field{Name: "key", Offset: lruOffKey, Size: 4},
			layout.Field{Name: "valptr", Offset: lruOffVal, Size: 4},
		))
		w := ArenaMem(c.arena)
		vals := make([]memsys.Addr, 0, len(entries))
		for _, e := range entries {
			vals = append(vals, w.LoadAddr(e.Add(lruOffVal)))
		}
		rm.RegisterElems(prefix+".values", vals, LRUValueBytes)
		rm.SetFieldMap(prefix+".values", layout.MustFieldMap("lru-value", LRUValueBytes,
			layout.Field{Name: "value", Offset: 0, Size: LRUValueBytes},
		))
		return label
	}
	rm.RegisterElems(label, entries, lruEntrySize)
	rm.SetFieldMap(label, layout.MustFieldMap("lru-entry", lruEntrySize,
		layout.Field{Name: "prev", Offset: lruOffPrev, Size: 4},
		layout.Field{Name: "next", Offset: lruOffNext, Size: 4},
		layout.Field{Name: "key", Offset: lruOffKey, Size: 4},
		layout.Field{Name: "value", Offset: 16, Size: LRUValueBytes},
	))
	return label
}

// CheckInvariants verifies the cache against simulated memory without
// charging the cache hierarchy: the recency list is a consistent
// doubly-linked chain of len unique keys, the index maps exactly the
// resident keys to their entries, payloads carry their key's salt,
// and counters match a full scan. Violations fail with
// cclerr.ErrCorruptStructure.
func (c *LRU) CheckInvariants() error {
	w := ArenaMem(c.arena)
	head := w.LoadAddr(c.hdr)
	tail := w.LoadAddr(c.hdr.Add(4))
	seen := make(map[uint32]memsys.Addr)
	var prev memsys.Addr = memsys.NilAddr
	count := int64(0)
	for e := head; !e.IsNil(); e = w.LoadAddr(e.Add(lruOffNext)) {
		if got := w.LoadAddr(e.Add(lruOffPrev)); got != prev {
			return cclerr.Errorf(cclerr.ErrCorruptStructure,
				"serving: lru entry %v: prev link %v, want %v", e, got, prev)
		}
		key := w.Load32(e.Add(lruOffKey))
		if _, dup := seen[key]; dup {
			return cclerr.Errorf(cclerr.ErrCorruptStructure, "serving: lru key %d resident twice", key)
		}
		seen[key] = e
		base := e.Add(16)
		if c.cfg.Split {
			base = w.LoadAddr(e.Add(lruOffVal))
			if !c.arena.Mapped(base, LRUValueBytes) {
				return cclerr.Errorf(cclerr.ErrCorruptStructure,
					"serving: lru entry %v: value pointer %v unmapped", e, base)
			}
		}
		v := w.LoadInt(base)
		salt := kvSalt(key)
		for j := int64(1); j < lruValueWords; j++ {
			if got := w.LoadInt(base.Add(j * 8)); got != v^(salt*j) {
				return cclerr.Errorf(cclerr.ErrCorruptStructure,
					"serving: lru key %d: payload word %d is %#x, want %#x", key, j, got, v^(salt*j))
			}
		}
		prev = e
		if count++; count > c.len {
			return cclerr.Errorf(cclerr.ErrCorruptStructure,
				"serving: lru list longer than len %d (cycle?)", c.len)
		}
	}
	if prev != tail {
		return cclerr.Errorf(cclerr.ErrCorruptStructure,
			"serving: lru tail is %v, list ends at %v", tail, prev)
	}
	if count != c.len {
		return cclerr.Errorf(cclerr.ErrCorruptStructure,
			"serving: lru len %d, list holds %d", c.len, count)
	}
	if c.len > c.cfg.Capacity {
		return cclerr.Errorf(cclerr.ErrCorruptStructure,
			"serving: lru len %d over capacity %d", c.len, c.cfg.Capacity)
	}
	idxLive, idxTombs := int64(0), int64(0)
	for i := int64(0); i < c.idxSlots; i++ {
		wrd := w.LoadInt(c.idx.Add(i * 8))
		a := memsys.Addr(wrd >> 32)
		switch a {
		case lruIdxEmpty:
		case lruIdxTomb:
			idxTombs++
		default:
			idxLive++
			key := uint32(wrd)
			if e, ok := seen[key]; !ok || e != a {
				return cclerr.Errorf(cclerr.ErrCorruptStructure,
					"serving: lru index maps key %d to %v, list has %v", key, a, e)
			}
		}
	}
	if idxLive != c.len || idxTombs != c.idxTombs {
		return cclerr.Errorf(cclerr.ErrCorruptStructure,
			"serving: lru index live=%d tombs=%d, counters say live=%d tombs=%d",
			idxLive, idxTombs, c.len, c.idxTombs)
	}
	return nil
}
