package vis

import (
	"reflect"
	"testing"

	"ccl/internal/machine"
)

// TestSeedDeterminism: same seed, same mode, byte-identical Result —
// node counts, checksum, and every cache counter.
func TestSeedDeterminism(t *testing.T) {
	cfg := Config{Bits: 6, Evals: 500, Seed: 17}
	for _, mode := range []Mode{Base, CCMalloc} {
		t.Run(mode.String(), func(t *testing.T) {
			a := Run(machine.NewScaled(16), mode, cfg)
			b := Run(machine.NewScaled(16), mode, cfg)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same-seed reruns diverged:\n  first:  %+v\n  second: %+v", a, b)
			}
		})
	}
}
