package vis

import (
	"testing"

	"ccl/internal/heap"
	"ccl/internal/machine"
	"ccl/internal/memsys"
)

func newEngine(nvars int) (*BDD, *machine.Machine) {
	m := machine.NewScaled(16)
	return NewBDD(m, heap.New(m.Arena), false, nvars), m
}

func TestConstantsAndVar(t *testing.T) {
	b, _ := newEngine(4)
	if b.Zero() == b.One() {
		t.Fatal("constants collide")
	}
	v := b.Var(2)
	if !b.Eval(v, 1<<2) || b.Eval(v, 0) {
		t.Fatal("Var(2) evaluates wrong")
	}
	// Canonicity: same request, same node.
	if b.Var(2) != v {
		t.Fatal("unique table failed to canonicalize Var")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	b, _ := newEngine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Var(5) did not panic")
		}
	}()
	b.Var(5)
}

func TestBooleanOpsTruthTables(t *testing.T) {
	b, _ := newEngine(2)
	x, y := b.Var(0), b.Var(1)
	cases := []struct {
		name string
		f    memsys.Addr
		want func(a, c bool) bool
	}{
		{"and", b.And(x, y), func(a, c bool) bool { return a && c }},
		{"or", b.Or(x, y), func(a, c bool) bool { return a || c }},
		{"xor", b.Xor(x, y), func(a, c bool) bool { return a != c }},
		{"notx", b.Not(x), func(a, c bool) bool { return !a }},
	}
	for _, tc := range cases {
		for env := uint64(0); env < 4; env++ {
			got := b.Eval(tc.f, env)
			want := tc.want(env&1 == 1, env>>1&1 == 1)
			if got != want {
				t.Errorf("%s(env=%b) = %v, want %v", tc.name, env, got, want)
			}
		}
	}
}

func TestCanonicityAcrossConstructions(t *testing.T) {
	b, _ := newEngine(3)
	x, y, z := b.Var(0), b.Var(1), b.Var(2)
	// Two derivations of the majority function.
	f := b.Or(b.Or(b.And(x, y), b.And(y, z)), b.And(x, z))
	g := b.ITE(x, b.Or(y, z), b.And(y, z))
	if f != g {
		t.Fatal("equivalent functions got different canonical nodes")
	}
	before := b.Nodes()
	_ = b.Or(b.Or(b.And(x, y), b.And(y, z)), b.And(x, z))
	if b.Nodes() != before {
		t.Fatal("rebuilding an existing function created nodes")
	}
}

// TestMultiplierSemantics exhaustively checks the BDD multiplier
// against integer multiplication for small widths.
func TestMultiplierSemantics(t *testing.T) {
	const bits = 3
	b, _ := newEngine(2 * bits)
	as := make([]memsys.Addr, bits)
	bs := make([]memsys.Addr, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.Var(2 * i)
		bs[i] = b.Var(2*i + 1)
	}
	prod := b.multiply(as, bs)
	if len(prod) != 2*bits {
		t.Fatalf("product width %d, want %d", len(prod), 2*bits)
	}
	for a := uint64(0); a < 1<<bits; a++ {
		for c := uint64(0); c < 1<<bits; c++ {
			var env uint64
			for i := 0; i < bits; i++ {
				env |= (a >> i & 1) << (2 * i)
				env |= (c >> i & 1) << (2*i + 1)
			}
			want := a * c
			for i, f := range prod {
				if got := b.Eval(f, env); got != (want>>i&1 == 1) {
					t.Fatalf("bit %d of %d*%d wrong", i, a, c)
				}
			}
		}
	}
}

func TestRunChecksumsMatchAcrossModes(t *testing.T) {
	cfg := Config{Bits: 5, Evals: 300, Seed: 3}
	base := Run(machine.NewScaled(16), Base, cfg)
	cc := Run(machine.NewScaled(16), CCMalloc, cfg)
	if base.Check != cc.Check {
		t.Fatalf("checksums diverge: %d vs %d", base.Check, cc.Check)
	}
	if base.Nodes != cc.Nodes {
		t.Fatalf("node counts diverge: %d vs %d", base.Nodes, cc.Nodes)
	}
	if base.Nodes < 100 {
		t.Fatalf("only %d nodes; workload trivial", base.Nodes)
	}
}

// TestFigure6VIS asserts the headline: ccmalloc-new-block beats the
// base allocator on the paper-scale machine.
func TestFigure6VIS(t *testing.T) {
	cfg := DefaultConfig()
	base := Run(machine.NewPaper(), Base, cfg)
	cc := Run(machine.NewPaper(), CCMalloc, cfg)
	if cc.Cycles() >= base.Cycles() {
		t.Fatalf("ccmalloc (%d) did not beat base (%d)", cc.Cycles(), base.Cycles())
	}
	if sp := float64(base.Cycles()) / float64(cc.Cycles()); sp < 1.08 {
		t.Errorf("VIS speedup only %.2fx; paper reports 1.27x", sp)
	}
	if cc.Check != base.Check {
		t.Fatal("modes computed different results")
	}
}

func TestModeString(t *testing.T) {
	if Base.String() != "base" || CCMalloc.String() != "ccmalloc-new-block" {
		t.Fatal("Mode.String broken")
	}
}

func TestBadBitsPanics(t *testing.T) {
	for _, bits := range []int{0, 1, 15} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bits=%d did not panic", bits)
				}
			}()
			Run(machine.NewScaled(16), Base, Config{Bits: bits, Evals: 1})
		}()
	}
}
