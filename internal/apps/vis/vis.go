// Package vis is the reproduction's stand-in for the paper's VIS
// macrobenchmark (§4.3, Figure 6): a formal-verification workload
// whose fundamental data structure is the Binary Decision Diagram.
//
// This is a genuine (reduced, ordered) BDD engine: a unique table
// with hash chains guarantees canonicity, ITE with a computed table
// builds node graphs for circuit functions, and evaluation walks
// var-low-high chains — the pointer-chasing traffic that dominated
// VIS. BDDs are DAGs, so ccmorph does not apply (the paper says
// exactly this); instead the engine allocates every node through a
// heap.Allocator and passes a co-location hint — the node's low
// child, which evaluation is about to chase — reproducing the paper's
// few-hour, little-understanding ccmalloc-new-block modification that
// bought 27%.
package vis

import (
	"fmt"

	"ccl/internal/cache"
	"ccl/internal/ccmalloc"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
)

// BDD node layout: level (variable index), low, high, and the unique
// table's hash-chain link.
const (
	ndLevel = 0  // uint32; ^0 level marks the constant leaves
	ndLow   = 4  // Addr
	ndHigh  = 8  // Addr
	ndNext  = 12 // Addr: unique-table chain
	// NodeSize is sizeof(struct BddNode).
	NodeSize = 16
)

// Busy-cycle costs.
const (
	HashCost = 6 // unique-table hash
	EvalCost = 2 // branch select per level
	OpCost   = 8 // ITE bookkeeping per recursion
)

const leafLevel = ^uint32(0)

// Mode selects the Figure 6 bar for VIS.
type Mode int

const (
	// Base runs on the conventional allocator.
	Base Mode = iota
	// CCMalloc runs on ccmalloc with the new-block strategy, the
	// configuration the paper measured (27% speedup).
	CCMalloc
)

// String names the mode.
func (m Mode) String() string {
	if m == CCMalloc {
		return "ccmalloc-new-block"
	}
	return "base"
}

// Config sizes the workload.
type Config struct {
	// Bits is the multiplier operand width; BDD size grows steeply
	// with it (multipliers are the classic BDD stress test).
	Bits int
	// Evals is the number of random assignments evaluated against
	// the built functions.
	Evals int
	// Seed drives the evaluation vectors.
	Seed int64
}

// DefaultConfig returns the scaled workload.
func DefaultConfig() Config { return Config{Bits: 7, Evals: 2500, Seed: 17} }

// PaperConfig returns a heavier workload.
func PaperConfig() Config { return Config{Bits: 9, Evals: 20000, Seed: 17} }

// Result reports one run.
type Result struct {
	Mode      Mode
	Stats     cache.Stats
	HeapBytes int64
	Check     uint64
	Nodes     int64 // unique BDD nodes created
}

// Cycles returns total simulated execution time.
func (r Result) Cycles() int64 { return r.Stats.TotalCycles() }

// BDD is the engine: unique table, computed table, constants.
type BDD struct {
	m     *machine.Machine
	alloc heap.Allocator
	cc    bool // pass co-location hints

	buckets memsys.Addr // hash-bucket array (chains through ndNext)
	nbkt    int64
	nodes   int64

	zero, one memsys.Addr

	// computed memoizes ITE results (VIS's computed table; host map
	// stands in for its open-address cache).
	computed map[[3]memsys.Addr]memsys.Addr

	nvars int
}

// must adapts the library's checked allocation calls to the kernel's
// fail-fast policy (DESIGN.md Â§7): the workload is sized within the
// arena by construction, so a failure here is a harness bug or an
// injected fault, and the bench runner's per-experiment recover turns
// the panic into a structured failure record.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// NewBDD returns an engine with room for the given variable count.
func NewBDD(m *machine.Machine, alloc heap.Allocator, cc bool, nvars int) *BDD {
	b := &BDD{
		m:        m,
		alloc:    alloc,
		cc:       cc,
		nbkt:     1 << 12,
		computed: map[[3]memsys.Addr]memsys.Addr{},
		nvars:    nvars,
	}
	b.buckets = must(alloc.Alloc(b.nbkt * memsys.PtrSize))
	for i := int64(0); i < b.nbkt; i++ {
		m.StoreAddr(b.buckets.Add(i*memsys.PtrSize), memsys.NilAddr)
	}
	b.zero = b.newNode(leafLevel, memsys.NilAddr, memsys.NilAddr, memsys.NilAddr)
	b.one = b.newNode(leafLevel, memsys.NilAddr, memsys.NilAddr, memsys.NilAddr)
	return b
}

// Zero and One return the constant leaves.
func (b *BDD) Zero() memsys.Addr { return b.zero }

// One returns the true leaf.
func (b *BDD) One() memsys.Addr { return b.one }

// Nodes returns the number of unique nodes created.
func (b *BDD) Nodes() int64 { return b.nodes }

func (b *BDD) newNode(level uint32, low, high, hint memsys.Addr) memsys.Addr {
	n := must(b.alloc.AllocHint(NodeSize, hint))
	b.nodes++
	b.m.Store32(n.Add(ndLevel), level)
	b.m.StoreAddr(n.Add(ndLow), low)
	b.m.StoreAddr(n.Add(ndHigh), high)
	b.m.StoreAddr(n.Add(ndNext), memsys.NilAddr)
	return n
}

func (b *BDD) hash(level uint32, low, high memsys.Addr) int64 {
	h := uint64(level)*0x9E3779B1 ^ uint64(low)*0x85EBCA77 ^ uint64(high)*0xC2B2AE3D
	return int64(h % uint64(b.nbkt))
}

// MkNode returns the canonical node (level, low, high), applying the
// BDD reduction rule and consulting the unique table. The chain walk
// and insertion charge the cache; with cc enabled, a new node is
// hinted to the chain it is being prepended to — the data item "in
// contemporaneous use" at the allocation statement, exactly the local
// reasoning the paper says suffices (§3.2.1) — so unique-table chains
// pack into cache blocks the way mst's do.
func (b *BDD) MkNode(level uint32, low, high memsys.Addr) memsys.Addr {
	if low == high {
		return low
	}
	b.m.Tick(HashCost)
	slot := b.buckets.Add(b.hash(level, low, high) * memsys.PtrSize)
	head := b.m.LoadAddr(slot)
	for n := head; !n.IsNil(); n = b.m.LoadAddr(n.Add(ndNext)) {
		b.m.Tick(EvalCost)
		if b.m.Load32(n.Add(ndLevel)) == level &&
			b.m.LoadAddr(n.Add(ndLow)) == low &&
			b.m.LoadAddr(n.Add(ndHigh)) == high {
			return n
		}
	}
	hint := memsys.NilAddr
	if b.cc {
		if !head.IsNil() {
			hint = head
		} else {
			hint = slot
		}
	}
	n := b.newNode(level, low, high, hint)
	b.m.StoreAddr(n.Add(ndNext), head)
	b.m.StoreAddr(slot, n)
	return n
}

// Var returns the function of variable i.
func (b *BDD) Var(i int) memsys.Addr {
	if i < 0 || i >= b.nvars {
		panic(fmt.Sprintf("vis: variable %d out of range", i))
	}
	return b.MkNode(uint32(i), b.zero, b.one)
}

func (b *BDD) level(n memsys.Addr) uint32 { return b.m.Load32(n.Add(ndLevel)) }

// ITE computes if-then-else(f, g, h), the universal BDD operation.
func (b *BDD) ITE(f, g, h memsys.Addr) memsys.Addr {
	// Terminal cases.
	switch {
	case f == b.one:
		return g
	case f == b.zero:
		return h
	case g == b.one && h == b.zero:
		return f
	case g == h:
		return g
	}
	key := [3]memsys.Addr{f, g, h}
	if r, ok := b.computed[key]; ok {
		b.m.Tick(OpCost) // computed-table probe
		return r
	}
	b.m.Tick(OpCost)

	// Split on the top variable.
	top := b.level(f)
	if !g.IsNil() && g != b.zero && g != b.one {
		if l := b.level(g); l < top {
			top = l
		}
	}
	if !h.IsNil() && h != b.zero && h != b.one {
		if l := b.level(h); l < top {
			top = l
		}
	}
	f0, f1 := b.cofactor(f, top)
	g0, g1 := b.cofactor(g, top)
	h0, h1 := b.cofactor(h, top)
	low := b.ITE(f0, g0, h0)
	high := b.ITE(f1, g1, h1)
	r := b.MkNode(top, low, high)
	b.computed[key] = r
	return r
}

// cofactor returns (f|var=0, f|var=1) for the given level.
func (b *BDD) cofactor(f memsys.Addr, level uint32) (memsys.Addr, memsys.Addr) {
	if f == b.zero || f == b.one {
		return f, f
	}
	if b.level(f) != level {
		return f, f
	}
	return b.m.LoadAddr(f.Add(ndLow)), b.m.LoadAddr(f.Add(ndHigh))
}

// And, Or, Xor, Not: the usual derived operations.
func (b *BDD) And(f, g memsys.Addr) memsys.Addr { return b.ITE(f, g, b.zero) }

// Or returns f | g.
func (b *BDD) Or(f, g memsys.Addr) memsys.Addr { return b.ITE(f, b.one, g) }

// Xor returns f ^ g.
func (b *BDD) Xor(f, g memsys.Addr) memsys.Addr { return b.ITE(f, b.Not(g), g) }

// Not returns !f.
func (b *BDD) Not(f memsys.Addr) memsys.Addr { return b.ITE(f, b.zero, b.one) }

// Eval walks f under the assignment (bit i of env = variable i),
// chasing low/high pointers level by level.
func (b *BDD) Eval(f memsys.Addr, env uint64) bool {
	n := f
	for n != b.zero && n != b.one {
		b.m.Tick(EvalCost)
		lvl := b.m.Load32(n.Add(ndLevel))
		if env>>lvl&1 == 1 {
			n = b.m.LoadAddr(n.Add(ndHigh))
		} else {
			n = b.m.LoadAddr(n.Add(ndLow))
		}
	}
	return n == b.one
}

// addVec adds BDD vector ys into xs (ripple carry), returning the
// extended sum vector.
func (b *BDD) addVec(xs, ys []memsys.Addr) []memsys.Addr {
	n := len(xs)
	if len(ys) > n {
		n = len(ys)
	}
	get := func(v []memsys.Addr, i int) memsys.Addr {
		if i < len(v) {
			return v[i]
		}
		return b.zero
	}
	out := make([]memsys.Addr, n+1)
	carry := b.zero
	for i := 0; i < n; i++ {
		x, y := get(xs, i), get(ys, i)
		out[i] = b.Xor(b.Xor(x, y), carry)
		carry = b.Or(b.And(x, y), b.And(carry, b.Xor(x, y)))
	}
	out[n] = carry
	return out
}

// multiply returns the product bits of two BDD vectors via
// shift-and-add with partial products gated by the multiplier bits.
func (b *BDD) multiply(xs, ys []memsys.Addr) []memsys.Addr {
	prod := []memsys.Addr{b.zero}
	for i, yi := range ys {
		pp := make([]memsys.Addr, i+len(xs))
		for j := range pp {
			pp[j] = b.zero
		}
		for j, xj := range xs {
			pp[i+j] = b.And(yi, xj)
		}
		prod = b.addVec(prod, pp)
	}
	return prod[:len(xs)+len(ys)]
}

// Run executes the VIS workload: synthesize BDDs for an n x n
// multiplier, verify commutativity (a*b and b*a must reduce to the
// identical canonical nodes), and evaluate the product bits under
// random assignments. The checksum covers evaluation results and the
// unique-node count, and must match across modes.
func Run(m *machine.Machine, mode Mode, cfg Config) Result {
	if cfg.Bits < 2 || cfg.Bits > 14 {
		panic("vis: Bits out of range [2, 14]")
	}
	var alloc heap.Allocator
	if mode == CCMalloc {
		alloc = must(ccmalloc.New(m.Arena, layout.FromLevel(m.Cache.LastLevel()), ccmalloc.NewBlock, m.Cache))
	} else {
		alloc = heap.New(m.Arena)
	}
	nv := 2 * cfg.Bits
	b := NewBDD(m, alloc, mode == CCMalloc, nv)
	as := make([]memsys.Addr, cfg.Bits)
	bs := make([]memsys.Addr, cfg.Bits)
	for i := 0; i < cfg.Bits; i++ {
		as[i] = b.Var(2 * i)
		bs[i] = b.Var(2*i + 1)
	}

	// Synthesis phase: both operand orders.
	pab := b.multiply(as, bs)
	pba := b.multiply(bs, as)

	// Verification phase: commutativity, bit by bit; canonicity
	// makes this a pointer comparison.
	for i := range pab {
		if pab[i] != pba[i] {
			panic("vis: multiplier commutativity check failed")
		}
	}

	// Evaluation phase: the pointer-chasing traffic that dominates.
	var check uint64
	st := uint64(cfg.Seed)
	for e := 0; e < cfg.Evals; e++ {
		st = st*6364136223846793005 + 1442695040888963407
		env := st >> 3
		for i, f := range pab {
			if b.Eval(f, env) {
				check += uint64(i) + 1
			}
		}
	}

	return Result{
		Mode:      mode,
		Stats:     m.Stats(),
		HeapBytes: alloc.HeapBytes(),
		Check:     check<<20 | uint64(b.Nodes()),
		Nodes:     b.Nodes(),
	}
}
