package radiance

import (
	"testing"

	"ccl/internal/machine"
)

// small returns a quick configuration for correctness tests.
func small() Config {
	return Config{Spheres: 120, MaxDepth: 5, LeafItems: 2, Width: 24, Height: 16, Frames: 1, Bounces: 1, Seed: 4}
}

func TestChecksumsMatchAcrossModes(t *testing.T) {
	cfg := small()
	base := Run(machine.NewScaled(16), Base, cfg)
	if base.Check == 0 {
		t.Fatal("no rays hit anything; scene degenerate")
	}
	for _, mode := range []Mode{Cluster, ClusterColor} {
		r := Run(machine.NewScaled(16), mode, cfg)
		if r.Check != base.Check {
			t.Errorf("%v: checksum %d != base %d", mode, r.Check, base.Check)
		}
		if r.Arrays != base.Arrays {
			t.Errorf("%v: array count %d != base %d", mode, r.Arrays, base.Arrays)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(machine.NewScaled(16), ClusterColor, small())
	b := Run(machine.NewScaled(16), ClusterColor, small())
	if a.Cycles() != b.Cycles() || a.Check != b.Check {
		t.Fatal("identical runs diverged")
	}
}

func TestFramesScaleWork(t *testing.T) {
	cfg := small()
	one := Run(machine.NewScaled(16), Base, cfg)
	cfg.Frames = 3
	three := Run(machine.NewScaled(16), Base, cfg)
	if three.Cycles() <= one.Cycles() {
		t.Fatal("more frames should cost more cycles")
	}
	if three.Check != one.Check {
		t.Fatal("frames changed the image")
	}
}

// TestFigure6Radiance asserts the headline direction: clustering plus
// coloring beats the base layout on the harness machine.
func TestFigure6Radiance(t *testing.T) {
	cfg := DefaultConfig()
	base := Run(machine.NewScaled(16), Base, cfg)
	cc := Run(machine.NewScaled(16), ClusterColor, cfg)
	if cc.Cycles() >= base.Cycles() {
		t.Fatalf("clustering+coloring (%d) did not beat base (%d)", cc.Cycles(), base.Cycles())
	}
	if cc.Check != base.Check {
		t.Fatal("modes rendered different images")
	}
	// Clustering alone must at least not lose materially.
	cl := Run(machine.NewScaled(16), Cluster, cfg)
	if float64(cl.Cycles()) > 1.03*float64(base.Cycles()) {
		t.Errorf("clustering alone at %d vs base %d: outside envelope", cl.Cycles(), base.Cycles())
	}
}

func TestTraversalOnlyReducesCycles(t *testing.T) {
	cfg := small()
	full := Run(machine.NewScaled(16), Base, cfg)
	cfg.TraversalOnly = true
	trav := Run(machine.NewScaled(16), Base, cfg)
	if trav.Cycles() >= full.Cycles() {
		t.Fatal("TraversalOnly should exclude construction cycles")
	}
}

func TestModeString(t *testing.T) {
	if Base.String() != "base" || Cluster.String() != "clustering" || ClusterColor.String() != "clustering+coloring" {
		t.Fatal("Mode.String broken")
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Spheres: 0, MaxDepth: 5},
		{Spheres: 10, MaxDepth: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			Run(machine.NewScaled(16), Base, cfg)
		}()
	}
}

func TestOctreeWordTagging(t *testing.T) {
	// Item-list addresses are 4-aligned, so the leaf tag never
	// corrupts an address.
	m := machine.NewScaled(16)
	r := Run(m, Base, small())
	if r.Arrays == 0 {
		t.Fatal("no arrays built")
	}
}
