package radiance

import (
	"reflect"
	"testing"

	"ccl/internal/machine"
)

// TestSeedDeterminismAllModes strengthens TestDeterminism: every mode
// must reproduce the full Result — including each cache level's
// hit/miss/eviction counters — when rerun with the same seed.
func TestSeedDeterminismAllModes(t *testing.T) {
	for _, mode := range []Mode{Base, Cluster, ClusterColor} {
		t.Run(mode.String(), func(t *testing.T) {
			a := Run(machine.NewScaled(16), mode, small())
			b := Run(machine.NewScaled(16), mode, small())
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same-seed reruns diverged:\n  first:  %+v\n  second: %+v", a, b)
			}
		})
	}
}
