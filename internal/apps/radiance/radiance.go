// Package radiance is the reproduction's stand-in for the paper's
// RADIANCE macrobenchmark (§4.3, Figure 6): a ray caster whose scene
// is held in an octree.
//
// RADIANCE's octree is the "cubetree": it eliminates explicit node
// structures, much like an implicit heap (the paper notes this is why
// ccmalloc made no sense there). Each tree cell is one 4-byte word;
// an internal cell's word holds the address of a contiguous array of
// its 8 children's words; a leaf cell's word holds a tagged reference
// to its object list (or 0 when empty). The program builds this
// structure in depth-first order — the layout the paper's baseline
// measures — and the cache-conscious versions reorganize the 8-child
// arrays with ccmorph: subtree clustering packs a parent array with a
// child array per 64-byte L2 block (k = 2 for 32-byte elements), and
// coloring pins the root-most arrays, which every ray's point
// locations traverse, into a reserved cache region.
package radiance

import (
	"math"
	"math/rand"

	"ccl/internal/cache"
	"ccl/internal/ccmorph"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
)

// Octree word encoding: 0 = empty leaf; low bit 0 = internal (the
// word is the child-array address); low bit 1 = leaf (word &^ 1 is
// the item-list address).
const (
	leafTag = 1
	// ArraySize is the element size ccmorph works with: one 8-child
	// array of 4-byte words.
	ArraySize = 32
)

// Busy-cycle costs.
const (
	DescendCost = 2  // octant selection per level
	TestCost    = 24 // ray-sphere intersection arithmetic
	StepCost    = 4  // ray advance
)

// Sphere geometry record in simulated memory: cx, cy, cz, r float64.
const sphereSize = 32

// Mode selects the Figure 6 bar.
type Mode int

const (
	// Base is RADIANCE's native depth-first octree layout.
	Base Mode = iota
	// Cluster applies ccmorph subtree clustering only.
	Cluster
	// ClusterColor applies clustering and coloring — the paper's
	// measured configuration (42% speedup).
	ClusterColor
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Base:
		return "base"
	case Cluster:
		return "clustering"
	case ClusterColor:
		return "clustering+coloring"
	default:
		return "mode?"
	}
}

// Config sizes the workload.
type Config struct {
	// Spheres in the random scene.
	Spheres int
	// MaxDepth bounds octree subdivision.
	MaxDepth int
	// LeafItems triggers subdivision when exceeded.
	LeafItems int
	// Width and Height size the rendered image; rays are cast in
	// scanline order, so adjacent rays walk adjacent cells — the
	// inter-ray coherence a renderer's octree traffic actually has.
	Width, Height int
	// Frames renders the image repeatedly, standing in for the
	// long-running renders over which RADIANCE amortizes a single
	// reorganization.
	Frames int
	// Bounces adds that many secondary (ambient) rays per hit, in
	// deterministic pseudo-random directions: the incoherent
	// Monte-Carlo traffic that dominates RADIANCE's memory
	// behaviour.
	Bounces int
	// Seed drives scene generation.
	Seed int64
	// TraversalOnly resets the cycle counters after construction
	// (and reorganization), measuring the rendering phase alone.
	// The full-run default matches the paper's methodology, which
	// includes the restructuring overhead.
	TraversalOnly bool
}

// DefaultConfig returns the scaled workload: the octree must dwarf
// the (scaled) L2 the way RADIANCE's scene octrees dwarfed 1 MB.
func DefaultConfig() Config {
	return Config{Spheres: 1500, MaxDepth: 8, LeafItems: 2, Width: 64, Height: 48, Frames: 4, Bounces: 2, Seed: 11}
}

// PaperConfig returns a paper-scale workload.
func PaperConfig() Config {
	return Config{Spheres: 8000, MaxDepth: 9, LeafItems: 2, Width: 320, Height: 240, Frames: 3, Bounces: 2, Seed: 11}
}

// Result reports one run.
type Result struct {
	Mode      Mode
	Stats     cache.Stats
	HeapBytes int64
	Check     uint64 // hits + sum of hit sphere ids
	Arrays    int64  // 8-child arrays in the octree
}

// Cycles returns total simulated time.
func (r Result) Cycles() int64 { return r.Stats.TotalCycles() }

// must adapts the library's checked allocation calls to the kernel's
// fail-fast policy (DESIGN.md §7): workloads are sized within the
// arena by construction, so an allocation failure here is a harness
// bug or an injected fault, and the bench runner's per-experiment
// recover turns the panic into a structured failure record.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

type sphere struct{ x, y, z, r float64 }

// hostNode is the construction-time octree (host side).
type hostNode struct {
	kids  [8]*hostNode
	items []int
	leaf  bool
}

type app struct {
	m      *machine.Machine
	alloc  *heap.Malloc
	cfg    Config
	scene  []sphere
	geom   memsys.Addr // sphere records in simulated memory
	root   memsys.Addr // root 8-child array
	arrays int64
}

// Run builds the scene and octree, optionally reorganizes it, casts
// rays, and reports the result. Machine construction is up to the
// caller so modes share identical cache configurations.
func Run(m *machine.Machine, mode Mode, cfg Config) Result {
	if cfg.MaxDepth < 1 || cfg.Spheres < 1 {
		panic("radiance: need at least one sphere and one level")
	}
	a := &app{m: m, alloc: heap.New(m.Arena), cfg: cfg}
	a.buildScene()
	a.buildOctree()

	if mode != Base {
		frac := 0.0
		if mode == ClusterColor {
			// A modest Color_const: the octree is only a few times
			// larger than the L2, so reserving too much cache for
			// the hot levels would starve the cold ones.
			frac = 0.25
		}
		a.morph(frac)
	}
	if cfg.TraversalOnly {
		m.ResetStats()
	}

	frames := cfg.Frames
	if frames < 1 {
		frames = 1
	}
	var check uint64
	for f := 0; f < frames; f++ {
		check = a.castAll()
	}

	return Result{
		Mode:      mode,
		Stats:     m.Stats(),
		HeapBytes: a.alloc.HeapBytes(),
		Check:     check,
		Arrays:    a.arrays,
	}
}

// buildScene writes the sphere records into simulated memory.
func (a *app) buildScene() {
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	a.scene = make([]sphere, a.cfg.Spheres)
	a.geom = must(a.alloc.Alloc(int64(a.cfg.Spheres) * sphereSize))
	for i := range a.scene {
		s := sphere{
			x: rng.Float64(),
			y: rng.Float64(),
			z: rng.Float64(),
			r: 0.01 + 0.02*rng.Float64(),
		}
		a.scene[i] = s
		base := a.geom.Add(int64(i) * sphereSize)
		a.m.Arena.StoreFloat(base, s.x)
		a.m.Arena.StoreFloat(base.Add(8), s.y)
		a.m.Arena.StoreFloat(base.Add(16), s.z)
		a.m.Arena.StoreFloat(base.Add(24), s.r)
	}
}

// sphereTouchesCell is the conservative box-sphere overlap test used
// while building.
func (a *app) sphereTouchesCell(s sphere, x, y, z, half float64) bool {
	dx := math.Max(0, math.Abs(s.x-(x+half))-half)
	dy := math.Max(0, math.Abs(s.y-(y+half))-half)
	dz := math.Max(0, math.Abs(s.z-(z+half))-half)
	return dx*dx+dy*dy+dz*dz <= s.r*s.r
}

// buildOctree constructs the host tree, then writes it to simulated
// memory depth-first — the allocation order RADIANCE itself uses.
func (a *app) buildOctree() {
	var build func(x, y, z, size float64, items []int, depth int) *hostNode
	build = func(x, y, z, size float64, items []int, depth int) *hostNode {
		n := &hostNode{}
		if len(items) <= a.cfg.LeafItems || depth == a.cfg.MaxDepth {
			n.leaf = true
			n.items = items
			return n
		}
		half := size / 2
		for o := 0; o < 8; o++ {
			ox := x + half*float64(o&1)
			oy := y + half*float64((o>>1)&1)
			oz := z + half*float64((o>>2)&1)
			var sub []int
			for _, id := range items {
				if a.sphereTouchesCell(a.scene[id], ox, oy, oz, half/2) {
					sub = append(sub, id)
				}
			}
			n.kids[o] = build(ox, oy, oz, half, sub, depth+1)
		}
		return n
	}
	all := make([]int, len(a.scene))
	for i := range all {
		all[i] = i
	}
	root := build(0, 0, 0, 1, all, 0)

	// Depth-first write-out: allocate each 8-child array, then its
	// children's arrays (RADIANCE's native order).
	var emit func(n *hostNode) memsys.Addr
	emit = func(n *hostNode) memsys.Addr {
		arr := must(a.alloc.Alloc(ArraySize))
		a.arrays++
		for o := 0; o < 8; o++ {
			kid := n.kids[o]
			var word memsys.Addr
			switch {
			case kid == nil || (kid.leaf && len(kid.items) == 0):
				word = 0
			case kid.leaf:
				word = a.emitItems(kid.items) | leafTag
			default:
				word = emit(kid)
			}
			a.m.StoreAddr(arr.Add(int64(o)*4), word)
		}
		return arr
	}
	if root.leaf {
		// Degenerate scene: wrap in a single-level tree.
		wrapped := &hostNode{}
		for o := 0; o < 8; o++ {
			wrapped.kids[o] = &hostNode{leaf: true, items: root.items}
		}
		root = wrapped
	}
	a.root = emit(root)
}

// emitItems writes a leaf's item list: [count][id...].
func (a *app) emitItems(items []int) memsys.Addr {
	p := must(a.alloc.Alloc(int64(4 + 4*len(items))))
	a.m.Store32(p, uint32(len(items)))
	for i, id := range items {
		a.m.Store32(p.Add(int64(4+4*i)), uint32(id))
	}
	return p
}

// octLayout is the ccmorph template: elements are 8-child arrays;
// kid i is the i-th word when it names another array.
func octLayout() ccmorph.Layout {
	return ccmorph.Layout{
		NodeSize: ArraySize,
		MaxKids:  8,
		Kid: func(m *machine.Machine, n memsys.Addr, i int) memsys.Addr {
			w := m.LoadAddr(n.Add(int64(i-1) * 4))
			if w == 0 || w&leafTag != 0 {
				return memsys.NilAddr // empty or item-list leaf
			}
			return w
		},
		SetKid: func(m *machine.Machine, n memsys.Addr, i int, kid memsys.Addr) {
			m.StoreAddr(n.Add(int64(i-1)*4), kid)
		},
	}
}

// morph reorganizes the octree arrays, then relocates the leaf item
// lists into a fresh packed region in tree order so the restructured
// octree occupies a compact page range (leaving the lists behind in
// the old heap would grow, not shrink, the traversal's working set).
// The measurement includes this cost, as the paper's RADIANCE results
// do ("the performance results include the overhead of restructuring
// the octree").
func (a *app) morph(colorFrac float64) {
	cfg := ccmorph.Config{
		Geometry:  layout.FromLevel(a.m.Cache.LastLevel()),
		ColorFrac: colorFrac, // zero disables coloring
	}
	root, _, err := ccmorph.Reorganize(a.m, a.root, octLayout(), cfg, nil)
	if err != nil {
		panic(err) // kernel fail-fast policy; see must
	}
	a.root = root

	// Everything else the rays touch heavily must stay out of the
	// reserved hot region, or it would evict the pinned tree levels
	// (coloring partitions the cache for ALL contemporaneously hot
	// data, Figure 2). With coloring on, item lists and the sphere
	// records move to the cold region; without it, a plain bump.
	blockSize := cfg.Geometry.BlockSize
	var cold *layout.SegmentAllocator
	var nextBlock func() memsys.Addr
	if colorFrac > 0 {
		col := must(layout.NewColoring(cfg.Geometry, colorFrac))
		cold = must(layout.NewSegmentAllocator(a.m.Arena, col, false))
		nextBlock = func() memsys.Addr { return must(cold.Alloc(blockSize)) }
	} else {
		bump := must(layout.NewBlockBump(a.m.Arena, blockSize))
		nextBlock = func() memsys.Addr { return must(bump.Alloc()) }
	}
	cur, used := memsys.NilAddr, int64(0)
	var relocate func(arr memsys.Addr)
	relocate = func(arr memsys.Addr) {
		for o := 0; o < 8; o++ {
			slot := arr.Add(int64(o) * 4)
			w := a.m.LoadAddr(slot)
			if w == 0 {
				continue
			}
			if w&leafTag == 0 {
				relocate(w)
				continue
			}
			items := w &^ leafTag
			n := int64(4 + 4*a.m.Load32(items))
			if n > blockSize {
				continue // oversized list: leave it in place
			}
			if cur.IsNil() || used+n > blockSize {
				cur, used = nextBlock(), 0
			}
			dst := cur.Add(used)
			used += (n + 3) &^ 3
			a.m.Cache.Access(items, n, cache.Load)
			a.m.Cache.Access(dst, n, cache.Store)
			a.m.Arena.Memcpy(dst, items, n)
			a.m.StoreAddr(slot, dst|leafTag)
		}
	}
	relocate(a.root)

	// Relocate the sphere records to a contiguous cold extent (the
	// intersect path indexes them by id, so contiguity is required).
	if cold != nil {
		total := int64(len(a.scene)) * sphereSize
		col := must(layout.NewColoring(cfg.Geometry, colorFrac))
		runLen := (col.Sets - col.HotSets) * col.BlockSize
		for off := int64(0); off < total; {
			n := total - off
			if n > runLen {
				n = runLen
			}
			// Spheres are relocated run-sized piece by piece, but
			// each piece must stay contiguous with the previous to
			// preserve indexing — so only a single-piece move is
			// safe. Larger scenes keep their original placement.
			if off == 0 && n == total {
				dst := must(cold.Alloc(n))
				a.m.Cache.Access(a.geom, n, cache.Load)
				a.m.Cache.Access(dst, n, cache.Store)
				a.m.Arena.Memcpy(dst, a.geom, n)
				a.geom = dst
			}
			off += n
		}
	}
}

// locate descends from the root to the leaf containing (x,y,z),
// returning the leaf word and the cell size. Every level loads one
// octree word — the pointer chase coloring accelerates.
func (a *app) locate(x, y, z float64) (word memsys.Addr, size float64) {
	cur := a.root
	cx, cy, cz := 0.0, 0.0, 0.0
	size = 1.0
	for depth := 0; ; depth++ {
		a.m.Tick(DescendCost)
		half := size / 2
		o := 0
		if x >= cx+half {
			o |= 1
			cx += half
		}
		if y >= cy+half {
			o |= 2
			cy += half
		}
		if z >= cz+half {
			o |= 4
			cz += half
		}
		w := a.m.LoadAddr(cur.Add(int64(o) * 4))
		size = half
		if w == 0 || w&leafTag != 0 {
			return w, size
		}
		cur = w
	}
}

// castAll renders the image in scanline order, spawning incoherent
// secondary rays at every primary hit, and accumulates the checksum
// over hit sphere ids.
func (a *app) castAll() uint64 {
	var check uint64
	w, h := a.cfg.Width, a.cfg.Height
	for j := 0; j < h; j++ {
		oz := (float64(j) + 0.5) / float64(h)
		for i := 0; i < w; i++ {
			oy := (float64(i) + 0.5) / float64(w)
			// Mild perspective: rays fan out around +x.
			dx, dy, dz := 1.0, (oy-0.5)*0.35, (oz-0.5)*0.35
			norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
			id, ok := a.cast(0, oy, oz, dx/norm, dy/norm, dz/norm)
			if !ok {
				continue
			}
			check += uint64(id) + 1
			// Ambient bounces: deterministic pseudo-random
			// directions from the hit sphere's center region.
			sp := a.scene[id]
			st := uint64(id)*2654435761 + uint64(i)<<16 + uint64(j)
			for b := 0; b < a.cfg.Bounces; b++ {
				st = st*6364136223846793005 + 1442695040888963407
				bx := float64(st>>40&1023)/512 - 1
				by := float64(st>>20&1023)/512 - 1
				bz := float64(st&1023)/512 - 1
				n := math.Sqrt(bx*bx + by*by + bz*bz)
				if n < 1e-9 {
					continue
				}
				ox := clamp01(sp.x + (sp.r+1e-4)*bx/n)
				oyy := clamp01(sp.y + (sp.r+1e-4)*by/n)
				ozz := clamp01(sp.z + (sp.r+1e-4)*bz/n)
				if bid, bok := a.cast(ox, oyy, ozz, bx/n, by/n, bz/n); bok {
					check += uint64(bid) + 1
				}
			}
		}
	}
	return check
}

func clamp01(v float64) float64 { return math.Min(math.Max(v, 0), 0.999999) }

// cast marches one ray through leaf cells, testing the spheres of
// each visited leaf.
func (a *app) cast(x, y, z, dx, dy, dz float64) (int, bool) {
	const eps = 1e-6
	for step := 0; step < 256; step++ {
		if x < 0 || x >= 1 || y < 0 || y >= 1 || z < 0 || z >= 1 {
			return 0, false
		}
		word, size := a.locate(x, y, z)
		if word != 0 {
			items := word &^ leafTag
			cnt := int(a.m.Load32(items))
			bestID, bestT := -1, math.Inf(1)
			for k := 0; k < cnt; k++ {
				id := int(a.m.Load32(items.Add(int64(4 + 4*k))))
				if t, hit := a.intersect(id, x, y, z, dx, dy, dz); hit && t < bestT {
					bestID, bestT = id, t
				}
			}
			if bestID >= 0 && bestT <= size*2 {
				return bestID, true
			}
		}
		a.m.Tick(StepCost)
		x += dx * (size + eps)
		y += dy * (size + eps)
		z += dz * (size + eps)
	}
	return 0, false
}

// intersect loads the sphere's record and solves the quadratic.
func (a *app) intersect(id int, x, y, z, dx, dy, dz float64) (float64, bool) {
	a.m.Tick(TestCost)
	base := a.geom.Add(int64(id) * sphereSize)
	sx := a.m.LoadFloat(base)
	sy := a.m.LoadFloat(base.Add(8))
	sz := a.m.LoadFloat(base.Add(16))
	sr := a.m.LoadFloat(base.Add(24))
	ox, oy, oz := x-sx, y-sy, z-sz
	b := ox*dx + oy*dy + oz*dz
	c := ox*ox + oy*oy + oz*oz - sr*sr
	disc := b*b - c
	if disc < 0 {
		return 0, false
	}
	t := -b - math.Sqrt(disc)
	if t < 0 {
		return 0, false
	}
	return t, true
}
