package treeadd

import (
	"testing"

	"ccl/internal/olden"
)

func TestSumMatchesClosedForm(t *testing.T) {
	// Values are assigned 1..n in build order, so the sum is
	// n(n+1)/2 regardless of layout.
	cfg := Config{Depth: 10, Repeats: 1}
	n := cfg.Nodes()
	want := uint64(n) * uint64(n+1) / 2
	for _, v := range []olden.Variant{olden.Base, olden.CCMallocNewBlock, olden.CCMorphClusterColor, olden.SWPrefetch, olden.HWPrefetch} {
		r := Run(olden.NewEnv(v, 16), cfg)
		if r.Check != want {
			t.Errorf("%s: sum = %d, want %d", v.Name(), r.Check, want)
		}
	}
}

func TestNodesCount(t *testing.T) {
	if (Config{Depth: 5}).Nodes() != 31 {
		t.Fatal("Nodes() wrong")
	}
	if DefaultConfig().Nodes() >= PaperConfig().Nodes() {
		t.Fatal("default config should be smaller than paper scale")
	}
}

func TestRepeatsScaleWork(t *testing.T) {
	one := Run(olden.NewEnv(olden.Base, 16), Config{Depth: 10, Repeats: 1})
	three := Run(olden.NewEnv(olden.Base, 16), Config{Depth: 10, Repeats: 3})
	if three.Cycles() <= one.Cycles() {
		t.Fatal("more repeats should cost more cycles")
	}
	if three.Check != one.Check {
		t.Fatal("repeats changed the sum")
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(olden.NewEnv(olden.CCMallocClosest, 16), Config{Depth: 9, Repeats: 2})
	b := Run(olden.NewEnv(olden.CCMallocClosest, 16), Config{Depth: 9, Repeats: 2})
	if a.Cycles() != b.Cycles() || a.Check != b.Check {
		t.Fatal("identical runs diverged")
	}
}

func TestMorphReducesTraversalMisses(t *testing.T) {
	// With enough repeats, the reorganized tree's denser packing
	// must show up as fewer L2 misses than base, even though total
	// cycles stay close (the build is sequential either way).
	base := Run(olden.NewEnv(olden.Base, 8), Config{Depth: 13, Repeats: 10})
	cl := Run(olden.NewEnv(olden.CCMorphCluster, 8), Config{Depth: 13, Repeats: 10})
	if cl.Stats.Levels[1].Misses >= base.Stats.Levels[1].Misses {
		t.Errorf("morphed L2 misses %d not below base %d",
			cl.Stats.Levels[1].Misses, base.Stats.Levels[1].Misses)
	}
}
