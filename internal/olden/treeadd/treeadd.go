// Package treeadd reproduces the Olden treeadd benchmark (Table 2):
// build a binary tree, then sum the values stored in its nodes.
//
// The tree is created recursively at program start-up, which means
// the baseline allocator already lays nodes out in the dominant
// (depth-first) traversal order — the reason the paper's Figure 7
// shows only 10–20% gains for cache-conscious placement here, with
// prefetching competitive.
package treeadd

import (
	"ccl/internal/ccmorph"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/olden"
	"ccl/internal/telemetry"
)

// Node layout: value uint32 at +0, left at +4, right at +8 (4-byte
// simulated pointers).
const (
	offValue = 0
	offLeft  = 4
	offRight = 8
	// NodeSize is the tree element size.
	NodeSize = 12
)

// AddCost is the busy work per node visit (load-add-store dataflow).
const AddCost = 4

// Config sizes the benchmark.
type Config struct {
	// Depth gives 2^Depth - 1 nodes (the paper used 256K nodes,
	// depth 18).
	Depth int
	// Repeats is how many times the summing traversal runs.
	Repeats int
}

// DefaultConfig returns the scaled-down workload used by tests and
// the scaled harness.
func DefaultConfig() Config { return Config{Depth: 14, Repeats: 8} }

// PaperConfig returns the paper-scale workload (256K nodes).
func PaperConfig() Config { return Config{Depth: 18, Repeats: 8} }

// Nodes returns the node count for the config.
func (c Config) Nodes() int64 { return 1<<c.Depth - 1 }

// Run executes treeadd under the environment's variant and returns
// its result. The checksum is the final sum and must be identical
// across variants.
func Run(env olden.Env, cfg Config) olden.Result {
	m := env.M

	var counter uint32
	var build func(depth int, parent memsys.Addr) memsys.Addr
	build = func(depth int, parent memsys.Addr) memsys.Addr {
		if depth == 0 {
			return memsys.NilAddr
		}
		n := heap.MustAllocHint(env.Alloc, NodeSize, env.Variant.Hint(parent))
		counter++
		m.Store32(n.Add(offValue), counter)
		m.StoreAddr(n.Add(offLeft), build(depth-1, n))
		m.StoreAddr(n.Add(offRight), build(depth-1, n))
		return n
	}
	root := build(cfg.Depth, memsys.NilAddr)

	if colorFrac, ok := env.Variant.MorphColorFrac(); ok {
		// Olden programs never free; the old copies become garbage,
		// which is ccmorph's documented memory cost, not a time cost.
		newRoot, _, err := ccmorph.Reorganize(m, root, Layout(), olden.MorphConfig(m, colorFrac), nil)
		if err != nil {
			// Degrade: copy-then-commit left the original tree intact;
			// sum it in its built layout.
			newRoot = root
		}
		root = newRoot
	}

	if env.Profile != nil {
		RegisterNodes(env.Profile, "treeadd-node", m, root)
	}

	var total uint64
	sw := env.Variant.SW()
	var sum func(n memsys.Addr) uint64
	sum = func(n memsys.Addr) uint64 {
		if n.IsNil() {
			return 0
		}
		m.Tick(AddCost)
		v := uint64(m.Load32(n.Add(offValue)))
		l := m.LoadAddr(n.Add(offLeft))
		r := m.LoadAddr(n.Add(offRight))
		if sw {
			m.Prefetch(l)
			m.Prefetch(r)
		}
		return v + sum(l) + sum(r)
	}
	for i := 0; i < cfg.Repeats; i++ {
		total = sum(root)
	}

	return olden.Result{
		Benchmark: "treeadd",
		Variant:   env.Variant,
		Stats:     m.Stats(),
		HeapBytes: env.Alloc.HeapBytes(),
		Check:     total,
	}
}

// FieldMap describes the treeadd element layout for field-level miss
// attribution.
func FieldMap() layout.FieldMap {
	return layout.MustFieldMap("treeadd-node", NodeSize,
		layout.Field{Name: "value", Offset: offValue, Size: 4},
		layout.Field{Name: "left", Offset: offLeft, Size: 4},
		layout.Field{Name: "right", Offset: offRight, Size: 4},
	)
}

// RegisterNodes registers the live tree under label — one range per
// node, walked host-side through the arena — and attaches the field
// map. Run calls it when env.Profile is set; callers profiling a tree
// they built directly can use it too.
func RegisterNodes(rm *telemetry.RegionMap, label string, m *machine.Machine, root memsys.Addr) {
	var addrs []memsys.Addr
	var walk func(n memsys.Addr)
	walk = func(n memsys.Addr) {
		if n.IsNil() {
			return
		}
		addrs = append(addrs, n)
		walk(m.Arena.LoadAddr(n.Add(offLeft)))
		walk(m.Arena.LoadAddr(n.Add(offRight)))
	}
	walk(root)
	rm.RegisterElems(label, addrs, NodeSize)
	rm.SetFieldMap(label, FieldMap())
}

// Layout is the ccmorph template for treeadd nodes.
func Layout() ccmorph.Layout {
	return ccmorph.Layout{
		NodeSize: NodeSize,
		MaxKids:  2,
		Kid: func(m *machine.Machine, n memsys.Addr, i int) memsys.Addr {
			if i == 1 {
				return m.LoadAddr(n.Add(offLeft))
			}
			return m.LoadAddr(n.Add(offRight))
		},
		SetKid: func(m *machine.Machine, n memsys.Addr, i int, kid memsys.Addr) {
			if i == 1 {
				m.StoreAddr(n.Add(offLeft), kid)
				return
			}
			m.StoreAddr(n.Add(offRight), kid)
		},
	}
}
