// Package olden defines the shared vocabulary of the four Olden
// benchmark reproductions (§4.4, Figure 7, Table 2): the measurement
// variants compared in Figure 7, the simulated machine each runs on,
// and the result record the harness tabulates.
//
// Each benchmark lives in a subpackage (treeadd, health, mst,
// perimeter) and implements the same pattern: build its pointer
// structure through a heap.Allocator, run its kernel on a
// machine.Machine, and report a cycle breakdown plus a workload
// checksum that must be identical across all variants — placement is
// semantics-preserving or it is wrong.
package olden

import (
	"fmt"

	"ccl/internal/cache"
	"ccl/internal/ccmalloc"
	"ccl/internal/ccmorph"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/sim"
	"ccl/internal/telemetry"
)

// Variant is one bar of Figure 7.
type Variant int

const (
	// Base is the unmodified benchmark on the baseline allocator.
	Base Variant = iota
	// HWPrefetch adds the paper's hardware prefetching scheme:
	// every loaded pointer value is prefetched immediately (an
	// idealization of "prefetching all loads and stores currently
	// in the reorder buffer").
	HWPrefetch
	// SWPrefetch adds Luk & Mowry greedy software prefetching.
	SWPrefetch
	// CCMallocFirstFit uses ccmalloc with the first-fit strategy.
	CCMallocFirstFit
	// CCMallocClosest uses ccmalloc with the closest strategy.
	CCMallocClosest
	// CCMallocNewBlock uses ccmalloc with the new-block strategy.
	CCMallocNewBlock
	// CCMorphCluster reorganizes with subtree clustering only.
	CCMorphCluster
	// CCMorphClusterColor reorganizes with clustering and coloring.
	CCMorphClusterColor
	// CCMallocNullHint is the §4.4 control experiment: ccmalloc
	// invoked with every hint replaced by a null pointer.
	CCMallocNullHint
)

// Figure7Variants lists the eight schemes of Figure 7, in the
// paper's bar order.
var Figure7Variants = []Variant{
	Base, HWPrefetch, SWPrefetch,
	CCMallocFirstFit, CCMallocClosest, CCMallocNewBlock,
	CCMorphCluster, CCMorphClusterColor,
}

// String returns the Figure 7 legend label.
func (v Variant) String() string {
	switch v {
	case Base:
		return "B"
	case HWPrefetch:
		return "HP"
	case SWPrefetch:
		return "SP"
	case CCMallocFirstFit:
		return "FA"
	case CCMallocClosest:
		return "CA"
	case CCMallocNewBlock:
		return "NA"
	case CCMorphCluster:
		return "Cl"
	case CCMorphClusterColor:
		return "Cl+Col"
	case CCMallocNullHint:
		return "Null"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Name returns the long description used in reports.
func (v Variant) Name() string {
	switch v {
	case Base:
		return "base"
	case HWPrefetch:
		return "hw-prefetch"
	case SWPrefetch:
		return "sw-prefetch"
	case CCMallocFirstFit:
		return "ccmalloc-first-fit"
	case CCMallocClosest:
		return "ccmalloc-closest"
	case CCMallocNewBlock:
		return "ccmalloc-new-block"
	case CCMorphCluster:
		return "ccmorph-clustering"
	case CCMorphClusterColor:
		return "ccmorph-clustering+coloring"
	case CCMallocNullHint:
		return "ccmalloc-null-hints"
	default:
		return fmt.Sprintf("variant-%d", int(v))
	}
}

// CCMallocStrategy returns the allocator strategy for ccmalloc
// variants.
func (v Variant) CCMallocStrategy() (ccmalloc.Strategy, bool) {
	switch v {
	case CCMallocFirstFit:
		return ccmalloc.FirstFit, true
	case CCMallocClosest:
		return ccmalloc.Closest, true
	case CCMallocNewBlock, CCMallocNullHint:
		return ccmalloc.NewBlock, true
	default:
		return 0, false
	}
}

// UsesHints reports whether the benchmark should pass real ccmalloc
// hints (false for the null-hint control and non-ccmalloc variants).
func (v Variant) UsesHints() bool {
	_, cc := v.CCMallocStrategy()
	return cc && v != CCMallocNullHint
}

// MorphColorFrac returns the ccmorph coloring fraction for ccmorph
// variants (0 = clustering only) and whether ccmorph applies at all.
func (v Variant) MorphColorFrac() (float64, bool) {
	switch v {
	case CCMorphCluster:
		return 0, true
	case CCMorphClusterColor:
		return 0.5, true
	default:
		return 0, false
	}
}

// Hint filters a ccmalloc co-location hint: the null-hint control
// variant suppresses every hint, all others pass it through (hints
// are harmless no-ops to the baseline allocator).
func (v Variant) Hint(h memsys.Addr) memsys.Addr {
	if v == CCMallocNullHint {
		return memsys.NilAddr
	}
	return h
}

// HW reports whether the hardware prefetcher is on.
func (v Variant) HW() bool { return v == HWPrefetch }

// SW reports whether kernels should issue software prefetches.
func (v Variant) SW() bool { return v == SWPrefetch }

// Env is the per-run environment: a machine plus the variant's
// allocator, both fresh.
type Env struct {
	M       *machine.Machine
	Alloc   heap.Allocator
	Variant Variant
	// Profile, when non-nil, asks the benchmark to register its live
	// structures (one range per element, plus field maps) with this
	// region map after construction, enabling field-level miss
	// profiling. Nil — the default — costs the benchmarks nothing.
	Profile *telemetry.RegionMap
}

// NewEnv builds a benchmark environment in a fresh, private run
// context; see NewEnvIn.
func NewEnv(v Variant, scale int64) Env { return NewEnvIn(sim.New(), v, scale) }

// NewEnvIn builds the simulated machine Figure 7 runs on: the Table 1
// RSIM hierarchy (128-byte lines, 2-way 256 KB L2), scaled down by
// scale to keep scaled workloads in proportion. The baseline
// allocator is charged heap.Malloc-equivalent costs via ccmalloc's
// cost model so allocator overhead comparisons are fair. The machine
// is owned by s, so the run context's fault guards reach it; an Env
// shares no mutable state with any other Env, which is what lets the
// bench worker pool run variants concurrently.
func NewEnvIn(s *sim.Sim, v Variant, scale int64) Env {
	cfg := cache.RSIMHierarchy()
	if scale > 1 {
		for i := range cfg.Levels {
			lvlScale := scale
			if i == 0 && lvlScale > 4 {
				// The L1 stays closer to full size: the paper's L1
				// is already tiny relative to the structures; over-
				// shrinking it to 8 lines would make every workload
				// L1-bound and mask the L2 placement effects the
				// experiments are about.
				lvlScale = 4
			}
			s := cfg.Levels[i].Size / lvlScale
			min := cfg.Levels[i].BlockSize * int64(cfg.Levels[i].Assoc) * 4
			if s < min {
				s = min
			}
			cfg.Levels[i].Size = s
		}
	}
	m := s.NewMachine(cfg)
	m.PointerPrefetch = v.HW()

	var alloc heap.Allocator
	if strat, ok := v.CCMallocStrategy(); ok {
		cc, err := ccmalloc.New(m.Arena, layout.FromLevel(m.Cache.LastLevel()), strat, m.Cache)
		if err != nil {
			// Geometry comes from the machine's own last-level cache,
			// so a failure here is a harness bug: fail fast (DESIGN.md §7).
			panic(err)
		}
		alloc = cc
	} else {
		alloc = &meteredMalloc{Malloc: heap.New(m.Arena), clock: m.Cache}
	}
	return Env{M: m, Alloc: alloc, Variant: v}
}

// meteredMalloc charges the baseline allocator's (smaller) running
// cost to the clock, so ccmalloc's extra bookkeeping shows up as the
// few-percent overhead the §4.4 control experiment measured.
type meteredMalloc struct {
	*heap.Malloc
	clock ccmalloc.Ticker
}

// BaseAllocCost and BaseFreeCost are the baseline allocator's cycle
// costs per operation (ccmalloc's are higher; see ccmalloc.AllocCost).
const (
	BaseAllocCost = 40
	BaseFreeCost  = 25
)

func (m *meteredMalloc) Alloc(size int64) (memsys.Addr, error) {
	m.clock.Tick(BaseAllocCost)
	return m.Malloc.Alloc(size)
}

func (m *meteredMalloc) AllocHint(size int64, hint memsys.Addr) (memsys.Addr, error) {
	m.clock.Tick(BaseAllocCost)
	return m.Malloc.Alloc(size)
}

func (m *meteredMalloc) Free(a memsys.Addr) error {
	m.clock.Tick(BaseFreeCost)
	return m.Malloc.Free(a)
}

// MorphConfig builds the ccmorph configuration targeting the
// machine's last-level cache with the given coloring fraction.
func MorphConfig(m *machine.Machine, colorFrac float64) ccmorph.Config {
	return ccmorph.Config{
		Geometry:  layout.FromLevel(m.Cache.LastLevel()),
		ColorFrac: colorFrac,
	}
}

// Result is one benchmark run's outcome.
type Result struct {
	Benchmark string
	Variant   Variant
	Stats     cache.Stats
	HeapBytes int64
	Check     uint64 // workload checksum; must match across variants
}

// Cycles returns total simulated execution time.
func (r Result) Cycles() int64 { return r.Stats.TotalCycles() }

// Normalized returns this result's cycles relative to base (the
// Figure 7 y-axis).
func (r Result) Normalized(base Result) float64 {
	return 100 * float64(r.Cycles()) / float64(base.Cycles())
}
