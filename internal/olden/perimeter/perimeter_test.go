package perimeter

import (
	"testing"

	"ccl/internal/olden"
)

// referencePerimeter computes the black region's perimeter by
// rasterizing the same quadtree decomposition (same uniform()
// sampling) into a pixel grid and counting black-white and
// black-boundary cell edges.
func referencePerimeter(cfg Config) uint64 {
	img := newImage(cfg)
	grid := make([][]bool, cfg.ImageSize)
	for i := range grid {
		grid[i] = make([]bool, cfg.ImageSize)
	}
	var fill func(x, y, s int)
	fill = func(x, y, s int) {
		if ok, col := img.uniform(x, y, s); ok {
			if col == Black {
				for dx := 0; dx < s; dx++ {
					for dy := 0; dy < s; dy++ {
						grid[x+dx][y+dy] = true
					}
				}
			}
			return
		}
		h := s / 2
		fill(x, y, h)
		fill(x+h, y, h)
		fill(x, y+h, h)
		fill(x+h, y+h, h)
	}
	fill(0, 0, cfg.ImageSize)

	black := func(x, y int) bool {
		if x < 0 || y < 0 || x >= cfg.ImageSize || y >= cfg.ImageSize {
			return false
		}
		return grid[x][y]
	}
	var per uint64
	for x := 0; x < cfg.ImageSize; x++ {
		for y := 0; y < cfg.ImageSize; y++ {
			if !grid[x][y] {
				continue
			}
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				if !black(x+d[0], y+d[1]) {
					per++
				}
			}
		}
	}
	return per
}

func TestPerimeterMatchesRasterReference(t *testing.T) {
	for _, cfg := range []Config{
		{ImageSize: 32, Circles: 2, Repeats: 1, Seed: 1},
		{ImageSize: 64, Circles: 4, Repeats: 1, Seed: 2},
		{ImageSize: 128, Circles: 6, Repeats: 1, Seed: 5},
	} {
		want := referencePerimeter(cfg)
		got := Run(olden.NewEnv(olden.Base, 16), cfg)
		if got.Check != want {
			t.Errorf("cfg %+v: perimeter %d, want %d", cfg, got.Check, want)
		}
	}
}

func TestAllVariantsAgree(t *testing.T) {
	cfg := Config{ImageSize: 128, Circles: 5, Repeats: 1, Seed: 7}
	want := Run(olden.NewEnv(olden.Base, 16), cfg).Check
	for _, v := range []olden.Variant{olden.CCMallocClosest, olden.CCMallocNewBlock, olden.CCMorphClusterColor, olden.SWPrefetch, olden.HWPrefetch} {
		if got := Run(olden.NewEnv(v, 16), cfg).Check; got != want {
			t.Errorf("%s: perimeter %d, want %d", v.Name(), got, want)
		}
	}
}

func TestMetaPacking(t *testing.T) {
	for _, c := range []struct {
		color uint32
		size  int
	}{{White, 1}, {Black, 64}, {Grey, 4096}} {
		v := packMeta(c.color, c.size)
		if metaColor(v) != c.color {
			t.Errorf("color round-trip failed for %v", c)
		}
		if metaSize(v) != uint64(c.size) {
			t.Errorf("size round-trip failed for %v: got %d", c, metaSize(v))
		}
	}
}

func TestNodeSizeGivesCompleteFamilies(t *testing.T) {
	// The packed 24-byte node must fit a parent and all four
	// children in one 128-byte RSIM line (k = 5).
	if 5*NodeSize > 128 {
		t.Fatalf("node size %d: five nodes exceed a 128-byte line", NodeSize)
	}
}

func TestBadImageSizePanics(t *testing.T) {
	for _, sz := range []int{0, 1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ImageSize %d did not panic", sz)
				}
			}()
			Run(olden.NewEnv(olden.Base, 16), Config{ImageSize: sz, Circles: 1, Repeats: 1})
		}()
	}
}

func TestEmptyImageHasZeroPerimeter(t *testing.T) {
	cfg := Config{ImageSize: 64, Circles: 0, Repeats: 1, Seed: 1}
	if r := Run(olden.NewEnv(olden.Base, 16), cfg); r.Check != 0 {
		t.Fatalf("all-white image has perimeter %d", r.Check)
	}
}
