// Package perimeter reproduces the Olden perimeter benchmark
// (Table 2): build a quadtree over a binary image and compute the
// total perimeter of the black region using Samet's neighbor-finding
// algorithm, which chases parent pointers up the tree and descends
// back down adjacent edges.
//
// The quadtree is built recursively at start-up (depth-first
// allocation order), so — as the paper observes for treeadd and
// perimeter — the baseline layout already matches the dominant
// traversal order and cache-conscious placement buys a modest
// 10–20%.
package perimeter

import (
	"math/rand"

	"ccl/internal/ccmorph"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/olden"
	"ccl/internal/telemetry"
)

// Quadtree node layout. Color and quadrant size are packed into one
// word (color in the low byte, log2(size) above it), as the original
// C program's small fields pack: the 24-byte element gives k = 5 per
// 128-byte line — a complete one-level subtree (parent plus all four
// children) per cache block.
const (
	qtMeta   = 0 // uint32: color | log2(size)<<8
	qtParent = 4
	qtNW     = 8
	qtNE     = 12
	qtSW     = 16
	qtSE     = 20
	// NodeSize is sizeof(struct QuadTree).
	NodeSize = 24
)

// Colors.
const (
	White = 0
	Black = 1
	Grey  = 2
)

// VisitCost is busy work per node visit.
const VisitCost = 4

// Config sizes the benchmark.
type Config struct {
	// ImageSize is the square image's side (a power of two; the
	// paper used 4096).
	ImageSize int
	// Circles is how many random blobs the synthetic image holds.
	Circles int
	// Repeats re-runs the perimeter computation.
	Repeats int
	// Seed drives image generation.
	Seed int64
}

// DefaultConfig returns the scaled workload.
func DefaultConfig() Config { return Config{ImageSize: 256, Circles: 12, Repeats: 6, Seed: 5} }

// PaperConfig returns the paper-scale workload (4K x 4K image).
func PaperConfig() Config { return Config{ImageSize: 4096, Circles: 24, Repeats: 6, Seed: 5} }

// image is the host-side synthetic bitmap the tree is built from (the
// original builds its tree from a generator too; the image itself is
// never a simulated structure).
type image struct {
	size    int
	circles [][3]int // x, y, r
}

func newImage(cfg Config) *image {
	rng := rand.New(rand.NewSource(cfg.Seed))
	img := &image{size: cfg.ImageSize}
	for i := 0; i < cfg.Circles; i++ {
		r := cfg.ImageSize/16 + rng.Intn(cfg.ImageSize/6)
		img.circles = append(img.circles, [3]int{
			rng.Intn(cfg.ImageSize), rng.Intn(cfg.ImageSize), r,
		})
	}
	return img
}

func (img *image) black(x, y int) bool {
	for _, c := range img.circles {
		dx, dy := x-c[0], y-c[1]
		if dx*dx+dy*dy <= c[2]*c[2] {
			return true
		}
	}
	return false
}

// uniform reports whether the quadrant [x,x+s) x [y,y+s) is all one
// color, sampling every pixel at leaf scale and corners+center above
// (sufficient for smooth circle blobs and deterministic).
func (img *image) uniform(x, y, s int) (bool, uint32) {
	first := img.black(x, y)
	if s == 1 {
		return true, colorOf(first)
	}
	step := s / 8
	if step < 1 {
		step = 1
	}
	for dx := 0; dx <= s-1; dx += step {
		for dy := 0; dy <= s-1; dy += step {
			if img.black(x+dx, y+dy) != first {
				return false, 0
			}
		}
	}
	return true, colorOf(first)
}

func colorOf(black bool) uint32 {
	if black {
		return Black
	}
	return White
}

// packMeta packs a color and quadrant side length into one word.
func packMeta(color uint32, size int) uint32 {
	lg := uint32(0)
	for s := size; s > 1; s >>= 1 {
		lg++
	}
	return color | lg<<8
}

func metaColor(v uint32) uint32 { return v & 0xFF }
func metaSize(v uint32) uint64  { return 1 << (v >> 8) }

type bench struct {
	env olden.Env
	m   *machine.Machine
	img *image
}

// Run builds the quadtree and computes the black region's perimeter
// (the checksum) Repeats times.
func Run(env olden.Env, cfg Config) olden.Result {
	if cfg.ImageSize < 2 || cfg.ImageSize&(cfg.ImageSize-1) != 0 {
		panic("perimeter: ImageSize must be a power of two >= 2")
	}
	b := &bench{env: env, m: env.M, img: newImage(cfg)}
	root := b.build(0, 0, cfg.ImageSize, memsys.NilAddr)

	if frac, ok := env.Variant.MorphColorFrac(); ok {
		// Olden programs never free; old copies become garbage.
		newRoot, _, err := ccmorph.Reorganize(b.m, root, Layout(), olden.MorphConfig(b.m, frac), nil)
		if err != nil {
			// Degrade: copy-then-commit left the original quadtree
			// intact; traverse it in its built layout.
			newRoot = root
		}
		root = newRoot
	}

	if env.Profile != nil {
		RegisterNodes(env.Profile, "perimeter-node", b.m, root)
	}

	var per uint64
	for i := 0; i < cfg.Repeats; i++ {
		per = b.perimeter(root)
	}

	return olden.Result{
		Benchmark: "perimeter",
		Variant:   env.Variant,
		Stats:     b.m.Stats(),
		HeapBytes: env.Alloc.HeapBytes(),
		Check:     per,
	}
}

// build allocates the quadtree for quadrant (x, y, s) under parent.
func (b *bench) build(x, y, s int, parent memsys.Addr) memsys.Addr {
	m := b.m
	n := heap.MustAllocHint(b.env.Alloc, NodeSize, b.env.Variant.Hint(parent))
	m.StoreAddr(n.Add(qtParent), parent)
	for _, off := range []int64{qtNW, qtNE, qtSW, qtSE} {
		m.StoreAddr(n.Add(off), memsys.NilAddr)
	}
	if ok, col := b.img.uniform(x, y, s); ok {
		m.Store32(n.Add(qtMeta), packMeta(col, s))
		return n
	}
	m.Store32(n.Add(qtMeta), packMeta(Grey, s))
	h := s / 2
	m.StoreAddr(n.Add(qtNW), b.build(x, y, h, n))
	m.StoreAddr(n.Add(qtNE), b.build(x+h, y, h, n))
	m.StoreAddr(n.Add(qtSW), b.build(x, y+h, h, n))
	m.StoreAddr(n.Add(qtSE), b.build(x+h, y+h, h, n))
	return n
}

// Directions for neighbor finding.
type dir int

const (
	north dir = iota
	south
	east
	west
)

// kidOf loads the child in the given quadrant slot.
func (b *bench) kid(n memsys.Addr, off int64) memsys.Addr { return b.m.LoadAddr(n.Add(off)) }

// whichKid returns which quadrant slot node occupies under parent.
func (b *bench) whichKid(parent, node memsys.Addr) int64 {
	for _, off := range []int64{qtNW, qtNE, qtSW, qtSE} {
		if b.kid(parent, off) == node {
			return off
		}
	}
	panic("perimeter: node not a child of its parent")
}

// neighbor returns the adjacent node of size >= node's size in the
// given direction, or nil at the image boundary — Samet's algorithm,
// climbing parents and reflecting quadrants on the way down.
func (b *bench) neighbor(node memsys.Addr, d dir) memsys.Addr {
	m := b.m
	m.Tick(VisitCost)
	parent := m.LoadAddr(node.Add(qtParent))
	if parent.IsNil() {
		return memsys.NilAddr
	}
	q := b.whichKid(parent, node)

	// If the neighbor is within the same parent, return the sibling.
	var inner map[int64]int64
	switch d {
	case north:
		inner = map[int64]int64{qtSW: qtNW, qtSE: qtNE}
	case south:
		inner = map[int64]int64{qtNW: qtSW, qtNE: qtSE}
	case east:
		inner = map[int64]int64{qtNW: qtNE, qtSW: qtSE}
	case west:
		inner = map[int64]int64{qtNE: qtNW, qtSE: qtSW}
	}
	if to, ok := inner[q]; ok {
		return b.kid(parent, to)
	}
	// Otherwise climb: find the parent's neighbor and descend into
	// the mirrored quadrant.
	t := b.neighbor(parent, d)
	if t.IsNil() || metaColor(m.Load32(t.Add(qtMeta))) != Grey {
		return t
	}
	var mirror map[int64]int64
	switch d {
	case north:
		mirror = map[int64]int64{qtNW: qtSW, qtNE: qtSE}
	case south:
		mirror = map[int64]int64{qtSW: qtNW, qtSE: qtNE}
	case east:
		mirror = map[int64]int64{qtNE: qtNW, qtSE: qtSW}
	case west:
		mirror = map[int64]int64{qtNW: qtNE, qtSW: qtSE}
	}
	return b.kid(t, mirror[q])
}

// whiteEdge returns how much of the edge of length size facing the
// given node is white: white leaf -> whole edge, black -> none, grey
// -> recurse into the two children along the touching edge.
func (b *bench) whiteEdge(n memsys.Addr, d dir, size uint64) uint64 {
	m := b.m
	m.Tick(VisitCost)
	switch metaColor(m.Load32(n.Add(qtMeta))) {
	case White:
		return size
	case Black:
		return 0
	}
	// Grey: the children adjacent to a node in direction d (from
	// the node's perspective, the neighbor's near edge).
	var a, c int64
	switch d {
	case north: // neighbor is to the node's north; its south edge touches
		a, c = qtSW, qtSE
	case south:
		a, c = qtNW, qtNE
	case east: // neighbor to the east; its west edge touches
		a, c = qtNW, qtSW
	case west:
		a, c = qtNE, qtSE
	}
	half := size / 2
	return b.whiteEdge(b.kid(n, a), d, half) + b.whiteEdge(b.kid(n, c), d, half)
}

// perimeter sums, over all black leaves, the length of boundary
// shared with white area or the image edge.
func (b *bench) perimeter(root memsys.Addr) uint64 {
	m := b.m
	sw := b.env.Variant.SW()
	var total uint64
	var walk func(n memsys.Addr)
	walk = func(n memsys.Addr) {
		m.Tick(VisitCost)
		meta := m.Load32(n.Add(qtMeta))
		col := metaColor(meta)
		if col == Grey {
			kids := [4]memsys.Addr{
				b.kid(n, qtNW), b.kid(n, qtNE), b.kid(n, qtSW), b.kid(n, qtSE),
			}
			if sw {
				for _, k := range kids {
					m.Prefetch(k)
				}
			}
			for _, k := range kids {
				walk(k)
			}
			return
		}
		if col != Black {
			return
		}
		size := metaSize(meta)
		for _, d := range []dir{north, south, east, west} {
			nb := b.neighbor(n, d)
			if nb.IsNil() {
				total += size // image boundary
				continue
			}
			if metaSize(m.Load32(nb.Add(qtMeta))) < size {
				panic("perimeter: neighbor smaller than node")
			}
			total += b.whiteEdge(nb, d, size)
		}
	}
	walk(root)
	return total
}

// Layout is the ccmorph template for quadtree nodes (4 children plus
// a parent pointer).
func Layout() ccmorph.Layout {
	offs := []int64{qtNW, qtNE, qtSW, qtSE}
	return ccmorph.Layout{
		NodeSize: NodeSize,
		MaxKids:  4,
		Kid: func(m *machine.Machine, n memsys.Addr, i int) memsys.Addr {
			return m.LoadAddr(n.Add(offs[i-1]))
		},
		SetKid: func(m *machine.Machine, n memsys.Addr, i int, kid memsys.Addr) {
			m.StoreAddr(n.Add(offs[i-1]), kid)
		},
		HasParent: true,
		SetParent: func(m *machine.Machine, n, p memsys.Addr) {
			m.StoreAddr(n.Add(qtParent), p)
		},
	}
}

// FieldMap describes the quadtree element layout for field-level miss
// attribution.
func FieldMap() layout.FieldMap {
	return layout.MustFieldMap("perimeter-node", NodeSize,
		layout.Field{Name: "meta", Offset: qtMeta, Size: 4},
		layout.Field{Name: "parent", Offset: qtParent, Size: 4},
		layout.Field{Name: "nw", Offset: qtNW, Size: 4},
		layout.Field{Name: "ne", Offset: qtNE, Size: 4},
		layout.Field{Name: "sw", Offset: qtSW, Size: 4},
		layout.Field{Name: "se", Offset: qtSE, Size: 4},
	)
}

// RegisterNodes registers the live quadtree under label — one range
// per node, walked host-side through the arena — and attaches the
// field map. Run calls it when env.Profile is set.
func RegisterNodes(rm *telemetry.RegionMap, label string, m *machine.Machine, root memsys.Addr) {
	var addrs []memsys.Addr
	var walk func(n memsys.Addr)
	walk = func(n memsys.Addr) {
		if n.IsNil() {
			return
		}
		addrs = append(addrs, n)
		for _, off := range []int64{qtNW, qtNE, qtSW, qtSE} {
			walk(m.Arena.LoadAddr(n.Add(off)))
		}
	}
	walk(root)
	rm.RegisterElems(label, addrs, NodeSize)
	rm.SetFieldMap(label, FieldMap())
}
