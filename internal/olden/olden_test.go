package olden_test

import (
	"testing"

	"ccl/internal/ccmalloc"
	"ccl/internal/olden"
	"ccl/internal/olden/health"
	"ccl/internal/olden/mst"
	"ccl/internal/olden/perimeter"
	"ccl/internal/olden/treeadd"
)

func TestVariantStrings(t *testing.T) {
	for _, v := range append(append([]olden.Variant{}, olden.Figure7Variants...), olden.CCMallocNullHint) {
		if v.String() == "" || v.Name() == "" {
			t.Errorf("variant %d has empty labels", int(v))
		}
	}
	if olden.Variant(99).String() == "" || olden.Variant(99).Name() == "" {
		t.Error("unknown variant should still format")
	}
	if olden.CCMorphClusterColor.String() != "Cl+Col" {
		t.Error("Figure 7 legend label wrong")
	}
}

func TestVariantDispatch(t *testing.T) {
	if s, ok := olden.CCMallocNewBlock.CCMallocStrategy(); !ok || s != ccmalloc.NewBlock {
		t.Error("NewBlock strategy mapping broken")
	}
	if _, ok := olden.Base.CCMallocStrategy(); ok {
		t.Error("Base should not use ccmalloc")
	}
	if !olden.CCMallocClosest.UsesHints() {
		t.Error("closest should pass hints")
	}
	if olden.CCMallocNullHint.UsesHints() {
		t.Error("null-hint control must not pass hints")
	}
	if olden.CCMallocNullHint.Hint(1234) != 0 {
		t.Error("null-hint control leaked a hint")
	}
	if olden.CCMallocNewBlock.Hint(1234) != 1234 {
		t.Error("hint suppressed for a hinted variant")
	}
	if f, ok := olden.CCMorphCluster.MorphColorFrac(); !ok || f != 0 {
		t.Error("cluster-only morph fraction wrong")
	}
	if f, ok := olden.CCMorphClusterColor.MorphColorFrac(); !ok || f <= 0 {
		t.Error("cluster+color morph fraction wrong")
	}
	if !olden.HWPrefetch.HW() || olden.HWPrefetch.SW() {
		t.Error("HW flags wrong")
	}
	if !olden.SWPrefetch.SW() || olden.SWPrefetch.HW() {
		t.Error("SW flags wrong")
	}
}

func TestNewEnvConfigures(t *testing.T) {
	e := olden.NewEnv(olden.HWPrefetch, 8)
	if !e.M.PointerPrefetch {
		t.Error("HWPrefetch env did not enable pointer prefetch")
	}
	if _, ok := e.Alloc.(*ccmalloc.Allocator); ok {
		t.Error("HWPrefetch env should use the baseline allocator")
	}
	e = olden.NewEnv(olden.CCMallocClosest, 8)
	cc, ok := e.Alloc.(*ccmalloc.Allocator)
	if !ok {
		t.Fatal("ccmalloc variant did not get a ccmalloc allocator")
	}
	if cc.Strategy() != ccmalloc.Closest {
		t.Error("wrong ccmalloc strategy")
	}
	// L1 scaling is capped; L2 scales fully.
	if got := e.M.Cache.Level(0).Size; got != 4<<10 {
		t.Errorf("scaled L1 = %d, want 4KB", got)
	}
	if got := e.M.Cache.Level(1).Size; got != 32<<10 {
		t.Errorf("scaled L2 = %d, want 32KB", got)
	}
}

// small configs keep the cross-variant sweep fast.
func smallRuns(v olden.Variant) []olden.Result {
	return []olden.Result{
		treeadd.Run(olden.NewEnv(v, 16), treeadd.Config{Depth: 10, Repeats: 2}),
		health.Run(olden.NewEnv(v, 16), health.Config{Levels: 3, Steps: 40, MorphInterval: 10, Seed: 1}),
		mst.Run(olden.NewEnv(v, 16), mst.Config{NumVert: 96, EdgesPer: 8, Buckets: 4, Seed: 3}),
		perimeter.Run(olden.NewEnv(v, 16), perimeter.Config{ImageSize: 128, Circles: 6, Repeats: 2, Seed: 5}),
	}
}

// TestChecksumsMatchAcrossVariants is the suite's core correctness
// property: placement is semantics-preserving, so every variant of
// every benchmark must compute the identical answer.
func TestChecksumsMatchAcrossVariants(t *testing.T) {
	base := smallRuns(olden.Base)
	variants := append(append([]olden.Variant{}, olden.Figure7Variants[1:]...), olden.CCMallocNullHint)
	for _, v := range variants {
		for i, r := range smallRuns(v) {
			if r.Check != base[i].Check {
				t.Errorf("%s/%s: checksum %d != base %d", r.Benchmark, v.Name(), r.Check, base[i].Check)
			}
			if r.Benchmark != base[i].Benchmark {
				t.Errorf("benchmark order mismatch: %s vs %s", r.Benchmark, base[i].Benchmark)
			}
		}
	}
}

// figure7 runs the full suite once at the harness scale and caches it
// for the shape tests.
var fig7 = map[string]map[olden.Variant]olden.Result{}

func runFig7(t *testing.T) map[string]map[olden.Variant]olden.Result {
	t.Helper()
	if len(fig7) > 0 {
		return fig7
	}
	variants := append(append([]olden.Variant{}, olden.Figure7Variants...), olden.CCMallocNullHint)
	for _, v := range variants {
		for _, r := range []olden.Result{
			treeadd.Run(olden.NewEnv(v, 8), treeadd.DefaultConfig()),
			health.Run(olden.NewEnv(v, 8), health.DefaultConfig()),
			mst.Run(olden.NewEnv(v, 8), mst.DefaultConfig()),
			perimeter.Run(olden.NewEnv(v, 8), perimeter.DefaultConfig()),
		} {
			if fig7[r.Benchmark] == nil {
				fig7[r.Benchmark] = map[olden.Variant]olden.Result{}
			}
			fig7[r.Benchmark][v] = r
		}
	}
	return fig7
}

func norm(t *testing.T, bench string, v olden.Variant) float64 {
	t.Helper()
	rs := runFig7(t)[bench]
	return rs[v].Normalized(rs[olden.Base])
}

// TestControlExperiment reproduces §4.4's control: replacing every
// ccmalloc hint with a null pointer makes programs slower than the
// base, by a modest margin (the paper measured 2-6%).
func TestControlExperiment(t *testing.T) {
	for _, b := range []string{"treeadd", "health", "mst", "perimeter"} {
		n := norm(t, b, olden.CCMallocNullHint)
		if n <= 100 {
			t.Errorf("%s: null-hint control at %.1f%% should be slower than base", b, n)
		}
		if n > 115 {
			t.Errorf("%s: null-hint control at %.1f%% is implausibly slow", b, n)
		}
	}
}

// TestFigure7Health: ccmalloc and ccmorph beat base; ccmorph beats
// both prefetching schemes (the paper's headline for health).
func TestFigure7Health(t *testing.T) {
	for _, v := range []olden.Variant{olden.CCMallocFirstFit, olden.CCMallocClosest, olden.CCMallocNewBlock, olden.CCMorphCluster, olden.CCMorphClusterColor} {
		if n := norm(t, "health", v); n >= 100 {
			t.Errorf("health/%s at %.1f%%: cache-conscious placement should beat base", v.Name(), n)
		}
	}
	mc := norm(t, "health", olden.CCMorphClusterColor)
	if sp := norm(t, "health", olden.SWPrefetch); mc >= sp {
		t.Errorf("health: ccmorph (%.1f%%) should outperform software prefetch (%.1f%%)", mc, sp)
	}
	if hp := norm(t, "health", olden.HWPrefetch); mc >= hp {
		t.Errorf("health: ccmorph (%.1f%%) should outperform hardware prefetch (%.1f%%)", mc, hp)
	}
}

// TestFigure7Mst: new-block beats the other strategies; ccmorph wins
// big; prefetching is nearly useless (the paper's mst story).
func TestFigure7Mst(t *testing.T) {
	na := norm(t, "mst", olden.CCMallocNewBlock)
	fa := norm(t, "mst", olden.CCMallocFirstFit)
	ca := norm(t, "mst", olden.CCMallocClosest)
	if na >= fa || na >= ca {
		t.Errorf("mst: new-block (%.1f%%) should beat first-fit (%.1f%%) and closest (%.1f%%)", na, fa, ca)
	}
	if na >= 90 {
		t.Errorf("mst: new-block at %.1f%% should clearly beat base", na)
	}
	if cl := norm(t, "mst", olden.CCMorphCluster); cl >= 70 {
		t.Errorf("mst: ccmorph clustering at %.1f%% should win big", cl)
	}
	for _, v := range []olden.Variant{olden.HWPrefetch, olden.SWPrefetch} {
		if n := norm(t, "mst", v); n < 85 {
			t.Errorf("mst: %s at %.1f%% — prefetching should be nearly useless on hash chains", v.Name(), n)
		}
		if cc := norm(t, "mst", olden.CCMallocNewBlock); cc >= norm(t, "mst", v) {
			t.Errorf("mst: ccmalloc should beat %s", v.Name())
		}
	}
}

// TestFigure7Treeadd: allocation order already matches traversal
// order, so gains are modest — but hinted allocation still beats base
// (density), and ccmorph lands within a few percent of base.
func TestFigure7Treeadd(t *testing.T) {
	if fa := norm(t, "treeadd", olden.CCMallocFirstFit); fa >= 100 || fa < 80 {
		t.Errorf("treeadd: first-fit at %.1f%%, want a modest (0-20%%) gain", fa)
	}
	if mc := norm(t, "treeadd", olden.CCMorphClusterColor); mc >= 100 {
		t.Errorf("treeadd: ccmorph at %.1f%% should not lose to base", mc)
	}
	// Prefetching is competitive here (the paper's observation).
	if sp := norm(t, "treeadd", olden.SWPrefetch); sp >= 100 {
		t.Errorf("treeadd: software prefetch at %.1f%% should help a streaming traversal", sp)
	}
}

// TestFigure7Perimeter: the quadtree is built in traversal order, so
// placement gains are small; hinted allocation edges out base while
// new-block pays its spreading cost.
func TestFigure7Perimeter(t *testing.T) {
	if fa := norm(t, "perimeter", olden.CCMallocFirstFit); fa >= 100 {
		t.Errorf("perimeter: first-fit at %.1f%% should edge out base", fa)
	}
	// ccmorph pays a one-time reorganization cost that the
	// depth-first-optimal base layout never lets it recoup under
	// serialized miss timing; it must stay within a modest envelope.
	if mc := norm(t, "perimeter", olden.CCMorphClusterColor); mc > 115 {
		t.Errorf("perimeter: ccmorph at %.1f%% outside the expected envelope", mc)
	}
}

// TestMemoryOverheads reproduces §4.4's accounting: ccmalloc's
// locality-for-memory trade shows up as extra heap versus base, and
// ccmorph's copies cost memory too.
func TestMemoryOverheads(t *testing.T) {
	rs := runFig7(t)
	// health churns allocations, so new-block's page spreading shows
	// up clearly against the base allocator. (mst's ccmalloc heap is
	// below base despite spreading: headerless packing more than
	// pays for the reserved blocks.)
	if na, base := rs["health"][olden.CCMallocNewBlock].HeapBytes, rs["health"][olden.Base].HeapBytes; na <= base {
		t.Errorf("health: new-block heap %d not above base %d", na, base)
	}
	// new-block never uses less memory than first-fit.
	for _, b := range []string{"treeadd", "health", "mst", "perimeter"} {
		na := rs[b][olden.CCMallocNewBlock].HeapBytes
		fa := rs[b][olden.CCMallocFirstFit].HeapBytes
		if na < fa {
			t.Errorf("%s: new-block heap %d below first-fit %d", b, na, fa)
		}
	}
	// At cache-block granularity, new-block's reservations cost real
	// space on the churning benchmarks (the paper's +7%/+30% story).
	for _, b := range []string{"health", "perimeter"} {
		envFA := olden.NewEnv(olden.CCMallocFirstFit, 8)
		envNA := olden.NewEnv(olden.CCMallocNewBlock, 8)
		switch b {
		case "health":
			health.Run(envFA, health.DefaultConfig())
			health.Run(envNA, health.DefaultConfig())
		case "perimeter":
			perimeter.Run(envFA, perimeter.DefaultConfig())
			perimeter.Run(envNA, perimeter.DefaultConfig())
		}
		fa := envFA.Alloc.(*ccmalloc.Allocator).BlocksUsed()
		na := envNA.Alloc.(*ccmalloc.Allocator).BlocksUsed()
		if na <= fa {
			t.Errorf("%s: new-block used %d blocks, first-fit %d; expected spreading overhead", b, na, fa)
		}
	}
}

// TestStatsBreakdownSane: the cycle components add up and no
// benchmark reports a zero breakdown.
func TestStatsBreakdownSane(t *testing.T) {
	rs := runFig7(t)
	for b, vs := range rs {
		for v, r := range vs {
			s := r.Stats
			total := s.BusyCycles + s.L1HitCycles + s.LoadStallCycles + s.StoreStall + s.PrefetchIssue
			if total != r.Cycles() {
				t.Errorf("%s/%s: breakdown sums to %d, want %d", b, v.Name(), total, r.Cycles())
			}
			if s.BusyCycles == 0 || s.L1HitCycles == 0 {
				t.Errorf("%s/%s: empty cycle breakdown", b, v.Name())
			}
		}
	}
}
