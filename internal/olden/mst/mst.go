// Package mst reproduces the Olden mst benchmark (Table 2): compute
// the minimum spanning tree of a graph whose adjacency structure is,
// per the paper, an "array of singly linked lists" — each vertex owns
// a chained hash table from neighbor id to edge weight, built at
// program start-up and never modified.
//
// The kernel is Prim's algorithm: every round walks the remaining
// vertices and performs one hash lookup each, so the hot loop chases
// short hash chains with no locality between them — the configuration
// in which the paper notes "incorrect placement incurs a high
// penalty" and ccmalloc-new-block shines.
package mst

import (
	"math/rand"

	"ccl/internal/ccmorph"
	"ccl/internal/heap"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/olden"
)

// Vertex layout: next vertex, mindist scratch, hash-table pointer.
const (
	vtxNext    = 0 // Addr
	vtxMindist = 4 // uint32
	vtxHash    = 8 // Addr -> bucket array
	// VertexSize is sizeof(struct Vertex).
	VertexSize = 12
)

// Hash-chain entry layout.
const (
	entNext   = 0 // Addr
	entKey    = 4 // uint32 neighbor id
	entWeight = 8 // uint32
	// EntrySize is sizeof(struct HashEntry).
	EntrySize = 12
)

// Busy-work costs.
const (
	HashCost  = 5 // hash computation per lookup
	VisitCost = 3 // per chain entry / vertex visit
)

const infDist = ^uint32(0)

// Config sizes the benchmark.
type Config struct {
	// NumVert is the vertex count (paper: 512).
	NumVert int
	// EdgesPer is the average number of extra random edges per
	// vertex beyond the connectivity ring.
	EdgesPer int
	// Buckets is the per-vertex hash-table size.
	Buckets int
	// Seed drives edge selection and weights.
	Seed int64
}

// DefaultConfig returns the scaled workload.
func DefaultConfig() Config { return Config{NumVert: 256, EdgesPer: 10, Buckets: 4, Seed: 3} }

// PaperConfig returns the paper-scale workload (512 nodes).
func PaperConfig() Config { return Config{NumVert: 512, EdgesPer: 10, Buckets: 4, Seed: 3} }

type graph struct {
	env        olden.Env
	m          *machine.Machine
	cfg        Config
	vertices   []memsys.Addr // index = vertex id
	first      memsys.Addr   // head of the vertex list
	morphBytes int64
}

// Run builds the graph and computes its MST weight (the checksum).
func Run(env olden.Env, cfg Config) olden.Result {
	if cfg.NumVert < 2 || cfg.Buckets < 1 {
		panic("mst: need at least 2 vertices and 1 bucket")
	}
	g := &graph{env: env, m: env.M, cfg: cfg}
	g.build()

	if frac, ok := env.Variant.MorphColorFrac(); ok {
		g.morphChains(frac)
	}

	total := g.prim()

	return olden.Result{
		Benchmark: "mst",
		Variant:   env.Variant,
		Stats:     g.m.Stats(),
		HeapBytes: env.Alloc.HeapBytes() + g.morphBytes,
		Check:     total,
	}
}

// hash maps a neighbor id to a bucket (Knuth multiplicative).
func (g *graph) hash(key uint32) int64 {
	return int64((key * 2654435761) % uint32(g.cfg.Buckets))
}

// build creates vertices, bucket arrays, and symmetric edges: a ring
// for connectivity plus EdgesPer random edges per vertex.
func (g *graph) build() {
	m := g.m
	n := g.cfg.NumVert
	alloc := g.env.Alloc
	v := g.env.Variant

	// Vertex list, each hinted to its predecessor.
	g.vertices = make([]memsys.Addr, n)
	var prev memsys.Addr
	for i := 0; i < n; i++ {
		vx := heap.MustAllocHint(alloc, VertexSize, v.Hint(prev))
		m.StoreAddr(vx.Add(vtxNext), memsys.NilAddr)
		m.Store32(vx.Add(vtxMindist), infDist)
		if !prev.IsNil() {
			m.StoreAddr(prev.Add(vtxNext), vx)
		}
		g.vertices[i] = vx
		prev = vx
	}
	g.first = g.vertices[0]

	// Bucket arrays, hinted to their vertex.
	arrBytes := int64(g.cfg.Buckets) * 4
	for i := 0; i < n; i++ {
		arr := heap.MustAllocHint(alloc, arrBytes, v.Hint(g.vertices[i]))
		for b := int64(0); b < int64(g.cfg.Buckets); b++ {
			m.StoreAddr(arr.Add(b*4), memsys.NilAddr)
		}
		m.StoreAddr(g.vertices[i].Add(vtxHash), arr)
	}

	// Edges: ring + random, inserted symmetrically with weights
	// from a deterministic generator.
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	addEdge := func(a, b int, w uint32) {
		g.insert(a, uint32(b), w)
		g.insert(b, uint32(a), w)
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n, uint32(rng.Intn(1000))+1)
	}
	for i := 0; i < n; i++ {
		for e := 0; e < g.cfg.EdgesPer/2; e++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			addEdge(i, j, uint32(rng.Intn(1000))+1)
		}
	}
}

// insert prepends an entry to vertex a's chain for neighbor key,
// hinting the new entry to the chain head (or to the bucket array
// slot when the chain is empty).
func (g *graph) insert(a int, key, w uint32) {
	m := g.m
	arr := m.LoadAddr(g.vertices[a].Add(vtxHash))
	slot := arr.Add(g.hash(key) * 4)
	head := m.LoadAddr(slot)
	hint := head
	if hint.IsNil() {
		hint = slot
	}
	e := heap.MustAllocHint(g.env.Alloc, EntrySize, g.env.Variant.Hint(hint))
	m.StoreAddr(e.Add(entNext), head)
	m.Store32(e.Add(entKey), key)
	m.Store32(e.Add(entWeight), w)
	m.StoreAddr(slot, e)
}

// lookup walks vertex a's chain for key, returning the weight or
// infDist.
func (g *graph) lookup(a memsys.Addr, key uint32) uint32 {
	m := g.m
	m.Tick(HashCost)
	arr := m.LoadAddr(a.Add(vtxHash))
	e := m.LoadAddr(arr.Add(g.hash(key) * 4))
	sw := g.env.Variant.SW()
	for !e.IsNil() {
		m.Tick(VisitCost)
		next := m.LoadAddr(e.Add(entNext))
		if sw {
			m.Prefetch(next)
		}
		if m.Load32(e.Add(entKey)) == key {
			return m.Load32(e.Add(entWeight))
		}
		e = next
	}
	return infDist
}

// prim computes the MST weight with Prim's algorithm over the vertex
// list, as Olden's mst does: each round relaxes every remaining
// vertex against the vertex just added (one hash lookup each), then
// extracts the minimum.
func (g *graph) prim() uint64 {
	m := g.m
	n := g.cfg.NumVert
	inTree := make([]bool, n)
	idOf := make(map[memsys.Addr]int, n)
	for i, a := range g.vertices {
		idOf[a] = i
	}

	inTree[0] = true
	last := uint32(0)
	var total uint64
	for added := 1; added < n; added++ {
		bestID, bestD := -1, infDist
		vx := g.first
		for !vx.IsNil() {
			m.Tick(VisitCost)
			id := idOf[vx]
			next := m.LoadAddr(vx.Add(vtxNext))
			if !inTree[id] {
				w := g.lookup(vx, last)
				d := m.Load32(vx.Add(vtxMindist))
				if w < d {
					d = w
					m.Store32(vx.Add(vtxMindist), d)
				}
				if d < bestD {
					bestD, bestID = d, id
				}
			}
			vx = next
		}
		if bestID < 0 || bestD == infDist {
			panic("mst: graph disconnected (ring edges missing?)")
		}
		inTree[bestID] = true
		total += uint64(bestD)
		last = uint32(bestID)
		// Reset mindist relative-to-last semantics: Olden keeps
		// cumulative mindist, which we mirror (no reset).
	}
	return total
}

// entryLayout is the ccmorph template for hash-chain entries.
func entryLayout() ccmorph.Layout {
	return ccmorph.Layout{
		NodeSize: EntrySize,
		MaxKids:  1,
		Kid: func(m *machine.Machine, n memsys.Addr, _ int) memsys.Addr {
			return m.LoadAddr(n.Add(entNext))
		},
		SetKid: func(m *machine.Machine, n memsys.Addr, _ int, kid memsys.Addr) {
			m.StoreAddr(n.Add(entNext), kid)
		},
	}
}

// morphChains reorganizes every hash chain once after construction
// (the structure never changes afterwards). One shared placer keeps
// the chains from fighting over the hot region.
func (g *graph) morphChains(colorFrac float64) {
	m := g.m
	placer, err := ccmorph.NewPlacer(m.Arena, olden.MorphConfig(m, colorFrac))
	if err != nil {
		// Geometry comes from the machine's own last-level cache, so a
		// failure here is a harness bug: fail fast (DESIGN.md §7).
		panic(err)
	}
	for _, vx := range g.vertices {
		arr := m.LoadAddr(vx.Add(vtxHash))
		for b := int64(0); b < int64(g.cfg.Buckets); b++ {
			slot := arr.Add(b * 4)
			head := m.LoadAddr(slot)
			if head.IsNil() {
				continue
			}
			newHead, _, merr := ccmorph.ReorganizeWith(m, head, entryLayout(), placer, nil)
			if merr != nil {
				// Degrade: the original chain is intact (copy-then-
				// commit); leave it in its old layout.
				continue
			}
			m.StoreAddr(slot, newHead)
		}
	}
	g.morphBytes = placer.Claimed()
}
