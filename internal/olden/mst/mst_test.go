package mst

import (
	"math/rand"
	"testing"

	"ccl/internal/olden"
)

// referenceMST replays the generator's edge stream into a host-side
// adjacency map and runs the same cumulative-min-distance Prim the
// simulated kernel uses, with the same duplicate-edge semantics (a
// later edge between the same pair shadows earlier ones, because
// insertion prepends to the hash chain).
func referenceMST(cfg Config) uint64 {
	n := cfg.NumVert
	adj := make([]map[int]uint32, n)
	for i := range adj {
		adj[i] = map[int]uint32{}
	}
	add := func(a, b int, w uint32) {
		// Prepending shadows earlier entries, so the latest weight
		// wins — overwriting matches chain-walk-finds-newest-first.
		adj[a][b] = w
		adj[b][a] = w
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < n; i++ {
		add(i, (i+1)%n, uint32(rng.Intn(1000))+1)
	}
	for i := 0; i < n; i++ {
		for e := 0; e < cfg.EdgesPer/2; e++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			add(i, j, uint32(rng.Intn(1000))+1)
		}
	}

	const inf = ^uint32(0)
	inTree := make([]bool, n)
	mindist := make([]uint32, n)
	for i := range mindist {
		mindist[i] = inf
	}
	inTree[0] = true
	last := 0
	var total uint64
	for added := 1; added < n; added++ {
		best, bestD := -1, inf
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			if w, ok := adj[v][last]; ok && w < mindist[v] {
				mindist[v] = w
			}
			if mindist[v] < bestD {
				bestD, best = mindist[v], v
			}
		}
		inTree[best] = true
		total += uint64(bestD)
		last = best
	}
	return total
}

func TestMSTWeightMatchesReference(t *testing.T) {
	for _, cfg := range []Config{
		{NumVert: 16, EdgesPer: 4, Buckets: 2, Seed: 1},
		{NumVert: 64, EdgesPer: 6, Buckets: 4, Seed: 2},
		DefaultConfig(),
	} {
		want := referenceMST(cfg)
		got := Run(olden.NewEnv(olden.Base, 16), cfg)
		if got.Check != want {
			t.Errorf("cfg %+v: MST weight %d, want %d", cfg, got.Check, want)
		}
	}
}

func TestAllVariantsAgree(t *testing.T) {
	cfg := Config{NumVert: 80, EdgesPer: 8, Buckets: 4, Seed: 9}
	want := Run(olden.NewEnv(olden.Base, 16), cfg).Check
	for _, v := range []olden.Variant{olden.CCMallocFirstFit, olden.CCMallocNewBlock, olden.CCMorphCluster, olden.SWPrefetch} {
		if got := Run(olden.NewEnv(v, 16), cfg).Check; got != want {
			t.Errorf("%s: weight %d, want %d", v.Name(), got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{NumVert: 1, EdgesPer: 2, Buckets: 2},
		{NumVert: 8, EdgesPer: 2, Buckets: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			Run(olden.NewEnv(olden.Base, 16), cfg)
		}()
	}
}

func TestRingKeepsGraphConnected(t *testing.T) {
	// Even with no random edges the ring guarantees a spanning tree
	// of n-1 ring edges.
	cfg := Config{NumVert: 10, EdgesPer: 0, Buckets: 2, Seed: 4}
	r := Run(olden.NewEnv(olden.Base, 16), cfg)
	if r.Check == 0 {
		t.Fatal("MST weight zero on a connected ring")
	}
	if r.Check != referenceMST(cfg) {
		t.Fatal("ring-only MST mismatch")
	}
}
