// Package health reproduces the Olden health benchmark (Table 2): a
// discrete-event simulation of the Columbian health-care system. A
// 4-ary tree of villages each runs a hospital with three
// doubly-linked patient lists (waiting, assess, inside); patients are
// generated at leaf villages, work through the lists, and are
// sometimes referred up to the parent village.
//
// The benchmark's primary structure is exactly the struct List of the
// paper's Figure 4, and adding to a list walks to the tail — so the
// hot loop is a pointer chase over list cells that are repeatedly
// allocated and freed. ccmalloc co-locates each new cell with its
// predecessor (the paper's addList example); the ccmorph variant
// periodically reorganizes the lists instead (§4.4).
package health

import (
	"math/rand"

	"ccl/internal/ccmorph"
	"ccl/internal/heap"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/olden"
)

// List cell layout — the paper's struct List {forward, back, patient}
// with 4-byte pointers.
const (
	cellForward = 0
	cellBack    = 4
	cellPatient = 8
	// CellSize is sizeof(struct List).
	CellSize = 12
)

// Patient record layout.
const (
	patID   = 0 // uint32
	patTime = 4 // uint32 remaining time in current stage
	patHops = 8 // uint32 villages visited
	// PatientSize is sizeof(struct Patient). Being equal to CellSize
	// also lets ccmorph treat patients as leaf elements of the lists.
	PatientSize = 12
)

// Village record layout: 4 children, parent, 3 list heads, id, leaf,
// and the village's most recently admitted patient (the co-location
// hint for the next patient record).
const (
	vilKids    = 0  // [4]Addr
	vilParent  = 16 // Addr
	vilWaiting = 20 // Addr (list head)
	vilAssess  = 24
	vilInside  = 28
	vilID      = 32 // uint32
	vilLeaf    = 36 // uint32
	vilLastPat = 40 // Addr
	// VillageSize is sizeof(struct Village).
	VillageSize = 44
)

// Simulation tuning (chosen so steady-state lists hold tens of
// cells, like the original's default parameters).
const (
	assessTime   = 5
	insideTime   = 25
	referralPct  = 30 // % of assessed patients sent to the parent
	arrivalPct   = 50 // % chance a leaf spawns a patient each step
	admitPerStep = 1  // waiting -> assess capacity
	// VisitCost is busy work per list-cell visit.
	VisitCost = 6
	// UpdateCost is busy work per patient state change.
	UpdateCost = 8
)

// Config sizes the benchmark.
type Config struct {
	// Levels is the village-tree depth; the paper's input is
	// "max. level = 3". Villages = (4^Levels - 1) / 3.
	Levels int
	// Steps is the simulated time (paper: 3000).
	Steps int
	// MorphInterval is how often (in steps) the ccmorph variant
	// reorganizes the lists; the paper made "no attempt ... to
	// determine the optimal interval".
	MorphInterval int
	// Seed drives patient arrivals and referrals.
	Seed int64
}

// DefaultConfig returns the scaled-down workload.
func DefaultConfig() Config { return Config{Levels: 4, Steps: 150, MorphInterval: 15, Seed: 1} }

// PaperConfig returns the paper-scale workload (level 3, 3000 steps;
// note the paper's "level 3" counts from 0, giving 4 levels).
func PaperConfig() Config { return Config{Levels: 4, Steps: 3000, MorphInterval: 100, Seed: 1} }

// Villages returns the village count for the config.
func (c Config) Villages() int64 { return (pow4(c.Levels) - 1) / 3 }

func pow4(n int) int64 {
	r := int64(1)
	for i := 0; i < n; i++ {
		r *= 4
	}
	return r
}

// sim is the running benchmark.
type sim struct {
	env      olden.Env
	m        *machine.Machine
	rng      *rand.Rand
	villages []memsys.Addr // post-order, leaves first
	// morphOwned tracks cells and patients placed by ccmorph (not
	// allocator property, so they must not be returned to the
	// allocator).
	morphOwned map[memsys.Addr]bool
	// patients is the live patient-record set; the ccmorph layout
	// uses it to tell leaf (patient) elements from list cells.
	patients   map[memsys.Addr]bool
	morphBytes int64
	// morphSkipped counts lists left in their old layout because a
	// periodic Reorganize failed (degraded, not fatal).
	morphSkipped int64
	nextPatID  uint32
	treated    uint64
	checksum   uint64
}

// Run executes the simulation and reports the result. The checksum
// accumulates the id and hop count of every treated patient and must
// match across variants.
func Run(env olden.Env, cfg Config) olden.Result {
	if cfg.Levels < 1 {
		panic("health: Levels must be at least 1")
	}
	s := &sim{
		env:        env,
		m:          env.M,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		morphOwned: map[memsys.Addr]bool{},
		patients:   map[memsys.Addr]bool{},
	}
	root := s.buildVillages(cfg.Levels, memsys.NilAddr)
	_ = root

	for step := 0; step < cfg.Steps; step++ {
		if frac, ok := env.Variant.MorphColorFrac(); ok &&
			cfg.MorphInterval > 0 && step > 0 && step%cfg.MorphInterval == 0 {
			s.morphAllLists(frac)
		}
		s.step()
	}

	return olden.Result{
		Benchmark: "health",
		Variant:   env.Variant,
		Stats:     s.m.Stats(),
		HeapBytes: env.Alloc.HeapBytes() + s.morphBytes,
		Check:     s.checksum + s.treated<<32,
	}
}

// buildVillages allocates the village tree, children after parents,
// and records post-order traversal order.
func (s *sim) buildVillages(level int, parent memsys.Addr) memsys.Addr {
	v := heap.MustAllocHint(s.env.Alloc, VillageSize, s.env.Variant.Hint(parent))
	m := s.m
	for i := 0; i < 4; i++ {
		m.StoreAddr(v.Add(vilKids+int64(i)*4), memsys.NilAddr)
	}
	m.StoreAddr(v.Add(vilParent), parent)
	m.StoreAddr(v.Add(vilWaiting), memsys.NilAddr)
	m.StoreAddr(v.Add(vilAssess), memsys.NilAddr)
	m.StoreAddr(v.Add(vilInside), memsys.NilAddr)
	m.StoreAddr(v.Add(vilLastPat), memsys.NilAddr)
	m.Store32(v.Add(vilID), uint32(len(s.villages)))
	leaf := uint32(0)
	if level == 1 {
		leaf = 1
	}
	m.Store32(v.Add(vilLeaf), leaf)
	if level > 1 {
		for i := 0; i < 4; i++ {
			kid := s.buildVillages(level-1, v)
			m.StoreAddr(v.Add(vilKids+int64(i)*4), kid)
		}
	}
	s.villages = append(s.villages, v) // post-order: kids first
	return v
}

// addList appends a patient to the list at head-slot listOff of
// village v, walking to the tail exactly like the paper's Figure 4
// and hinting the new cell with its predecessor.
func (s *sim) addList(v memsys.Addr, listOff int64, patient memsys.Addr) {
	m := s.m
	var b memsys.Addr
	list := m.LoadAddr(v.Add(listOff))
	for !list.IsNil() {
		s.m.Tick(VisitCost)
		b = list
		list = m.LoadAddr(list.Add(cellForward))
	}
	hint := b
	if hint.IsNil() {
		// First cell of a list: the village record, which is read
		// immediately before the head pointer on every walk, is the
		// natural companion.
		hint = v
	}
	cell := heap.MustAllocHint(s.env.Alloc, CellSize, s.env.Variant.Hint(hint))
	m.StoreAddr(cell.Add(cellPatient), patient)
	m.StoreAddr(cell.Add(cellBack), b)
	m.StoreAddr(cell.Add(cellForward), memsys.NilAddr)
	if b.IsNil() {
		m.StoreAddr(v.Add(listOff), cell)
	} else {
		m.StoreAddr(b.Add(cellForward), cell)
	}
}

// removeCell unlinks cell from the list at v's listOff slot and
// returns (frees) it.
func (s *sim) removeCell(v memsys.Addr, listOff int64, cell memsys.Addr) {
	m := s.m
	back := m.LoadAddr(cell.Add(cellBack))
	fwd := m.LoadAddr(cell.Add(cellForward))
	if back.IsNil() {
		m.StoreAddr(v.Add(listOff), fwd)
	} else {
		m.StoreAddr(back.Add(cellForward), fwd)
	}
	if !fwd.IsNil() {
		m.StoreAddr(fwd.Add(cellBack), back)
	}
	s.freeCell(cell)
}

// freeCell returns a cell to the allocator unless ccmorph owns it.
func (s *sim) freeCell(cell memsys.Addr) {
	delete(s.patients, cell) // no-op for actual cells
	if s.morphOwned[cell] {
		delete(s.morphOwned, cell)
		return
	}
	s.env.Alloc.Free(cell)
}

// freePatient releases a discharged patient record. The villages'
// last-patient hints may dangle afterwards; a dangling hint is safe
// (ccmalloc treats unknown addresses as no hint) but we scrub the
// owning village lazily instead of chasing it here.
func (s *sim) freePatient(p memsys.Addr) {
	delete(s.patients, p)
	if s.morphOwned[p] {
		delete(s.morphOwned, p)
		return
	}
	s.env.Alloc.Free(p)
}

// step advances the simulation one time unit over every village.
func (s *sim) step() {
	m := s.m
	sw := s.env.Variant.SW()
	for _, v := range s.villages {
		// Patients inside the hospital heal and leave.
		cell := m.LoadAddr(v.Add(vilInside))
		for !cell.IsNil() {
			m.Tick(VisitCost)
			next := m.LoadAddr(cell.Add(cellForward))
			if sw {
				m.Prefetch(next)
			}
			p := m.LoadAddr(cell.Add(cellPatient))
			t := m.Load32(p.Add(patTime))
			if t <= 1 {
				m.Tick(UpdateCost)
				s.treated++
				s.checksum += uint64(m.Load32(p.Add(patID))) + uint64(m.Load32(p.Add(patHops)))<<16
				s.removeCell(v, vilInside, cell)
				s.freePatient(p)
			} else {
				m.Store32(p.Add(patTime), t-1)
			}
			cell = next
		}

		// Assessment finishes: refer up or admit.
		cell = m.LoadAddr(v.Add(vilAssess))
		for !cell.IsNil() {
			m.Tick(VisitCost)
			next := m.LoadAddr(cell.Add(cellForward))
			if sw {
				m.Prefetch(next)
			}
			p := m.LoadAddr(cell.Add(cellPatient))
			t := m.Load32(p.Add(patTime))
			if t <= 1 {
				m.Tick(UpdateCost)
				parent := m.LoadAddr(v.Add(vilParent))
				if !parent.IsNil() && s.rng.Intn(100) < referralPct {
					m.Store32(p.Add(patHops), m.Load32(p.Add(patHops))+1)
					m.Store32(p.Add(patTime), assessTime)
					s.removeCell(v, vilAssess, cell)
					s.addList(parent, vilWaiting, p)
				} else {
					m.Store32(p.Add(patTime), insideTime)
					s.removeCell(v, vilAssess, cell)
					s.addList(v, vilInside, p)
				}
			} else {
				m.Store32(p.Add(patTime), t-1)
			}
			cell = next
		}

		// Admit from the waiting list.
		for i := 0; i < admitPerStep; i++ {
			head := m.LoadAddr(v.Add(vilWaiting))
			if head.IsNil() {
				break
			}
			m.Tick(UpdateCost)
			p := m.LoadAddr(head.Add(cellPatient))
			m.Store32(p.Add(patTime), assessTime)
			s.removeCell(v, vilWaiting, head)
			s.addList(v, vilAssess, p)
		}

		// Leaves spawn new patients. Each is hinted to the village's
		// previous patient: patients of one village march through its
		// lists in arrival order, so consecutive arrivals are accessed
		// together on every walk.
		if m.Load32(v.Add(vilLeaf)) == 1 && s.rng.Intn(100) < arrivalPct {
			s.nextPatID++
			hint := m.LoadAddr(v.Add(vilLastPat))
			if hint.IsNil() {
				hint = v
			}
			p := heap.MustAllocHint(s.env.Alloc, PatientSize, s.env.Variant.Hint(hint))
			m.StoreAddr(v.Add(vilLastPat), p)
			s.patients[p] = true
			m.Store32(p.Add(patID), s.nextPatID)
			m.Store32(p.Add(patTime), 0)
			m.Store32(p.Add(patHops), 0)
			s.addList(v, vilWaiting, p)
		}
	}
}

// cellLayout is the ccmorph template for a hospital list: each cell
// has two "children" — the next cell and its patient record — so a
// reorganized list interleaves cells with the patients they point to,
// which is exactly the access order of every walk. Patients are
// leaves; the sim's live-patient set tells the two kinds apart (both
// are 12 bytes). Back pointers are rewired by the caller after the
// copy, so HasParent stays false.
func (s *sim) cellLayout() ccmorph.Layout {
	return ccmorph.Layout{
		NodeSize: CellSize,
		MaxKids:  2,
		Kid: func(m *machine.Machine, n memsys.Addr, i int) memsys.Addr {
			if s.patients[n] {
				return memsys.NilAddr // patients are leaves
			}
			if i == 1 {
				return m.LoadAddr(n.Add(cellForward))
			}
			return m.LoadAddr(n.Add(cellPatient))
		},
		SetKid: func(m *machine.Machine, n memsys.Addr, i int, kid memsys.Addr) {
			if i == 1 {
				m.StoreAddr(n.Add(cellForward), kid)
				return
			}
			m.StoreAddr(n.Add(cellPatient), kid)
		},
	}
}

// morphAllLists reorganizes every hospital list with ccmorph, as the
// paper's cache-conscious health version does periodically. All lists
// in one round share a single placement context: with coloring, the
// hot cache region is claimed once rather than once per list, so the
// lists do not conflict with each other. After each copy the back
// pointers are rewired and the relocated cells and patients are
// recorded as ccmorph property.
func (s *sim) morphAllLists(colorFrac float64) {
	m := s.m
	placer, err := ccmorph.NewPlacer(m.Arena, olden.MorphConfig(m, colorFrac))
	if err != nil {
		// Geometry comes from the machine's own last-level cache, so a
		// failure here is a harness bug: fail fast (DESIGN.md §7).
		panic(err)
	}
	lay := s.cellLayout()
	for _, v := range s.villages {
		for _, off := range []int64{vilWaiting, vilAssess, vilInside} {
			head := m.LoadAddr(v.Add(off))
			if head.IsNil() {
				continue
			}
			newHead, _, merr := ccmorph.ReorganizeWith(m, head, lay, placer, s.freeCell)
			if merr != nil {
				// Degrade: Reorganize is copy-then-commit, so the
				// original list is intact — keep walking it in its old
				// layout this round instead of dying mid-simulation.
				s.morphSkipped++
				continue
			}
			m.StoreAddr(v.Add(off), newHead)
			prev := memsys.NilAddr
			for c := newHead; !c.IsNil(); c = m.Arena.LoadAddr(c.Add(cellForward)) {
				m.StoreAddr(c.Add(cellBack), prev)
				s.morphOwned[c] = true
				pat := m.Arena.LoadAddr(c.Add(cellPatient))
				s.morphOwned[pat] = true
				s.patients[pat] = true
				prev = c
			}
		}
	}
	s.morphBytes += placer.Claimed()
}
