package health

import (
	"testing"

	"ccl/internal/ccmalloc"
	"ccl/internal/olden"
)

func TestVillageCount(t *testing.T) {
	cases := []struct {
		levels int
		want   int64
	}{{1, 1}, {2, 5}, {3, 21}, {4, 85}}
	for _, c := range cases {
		if got := (Config{Levels: c.levels}).Villages(); got != c.want {
			t.Errorf("Villages(%d) = %d, want %d", c.levels, got, c.want)
		}
	}
}

func TestSimulationTreatsPatients(t *testing.T) {
	cfg := Config{Levels: 3, Steps: 80, MorphInterval: 0, Seed: 1}
	r := Run(olden.NewEnv(olden.Base, 16), cfg)
	treated := r.Check >> 32
	if treated == 0 {
		t.Fatal("no patients treated; simulation inert")
	}
	if r.Check&0xFFFFFFFF == 0 {
		t.Fatal("checksum accumulated nothing")
	}
}

func TestAllVariantsAgree(t *testing.T) {
	cfg := Config{Levels: 3, Steps: 60, MorphInterval: 12, Seed: 3}
	want := Run(olden.NewEnv(olden.Base, 16), cfg).Check
	for _, v := range []olden.Variant{olden.CCMallocFirstFit, olden.CCMallocClosest, olden.CCMallocNewBlock,
		olden.CCMorphCluster, olden.CCMorphClusterColor, olden.SWPrefetch, olden.CCMallocNullHint} {
		if got := Run(olden.NewEnv(v, 16), cfg).Check; got != want {
			t.Errorf("%s: checksum %d, want %d", v.Name(), got, want)
		}
	}
}

func TestMorePatientsWithMoreSteps(t *testing.T) {
	short := Run(olden.NewEnv(olden.Base, 16), Config{Levels: 3, Steps: 50, Seed: 2})
	long := Run(olden.NewEnv(olden.Base, 16), Config{Levels: 3, Steps: 150, Seed: 2})
	if long.Check>>32 <= short.Check>>32 {
		t.Fatal("longer simulation treated no more patients")
	}
}

func TestMorphIntervalZeroDisablesMorph(t *testing.T) {
	cfg := Config{Levels: 3, Steps: 50, MorphInterval: 0, Seed: 2}
	r := Run(olden.NewEnv(olden.CCMorphClusterColor, 16), cfg)
	base := Run(olden.NewEnv(olden.Base, 16), cfg)
	if r.Check != base.Check {
		t.Fatal("morph-disabled run diverged")
	}
	// Without morphing, the morph variant is just the base program.
	if r.HeapBytes != base.HeapBytes {
		t.Fatalf("no-morph heap %d != base heap %d", r.HeapBytes, base.HeapBytes)
	}
}

func TestHeapStableUnderChurn(t *testing.T) {
	// Steady-state patient churn must not grow the base heap without
	// bound: doubling the steps should grow the heap only modestly.
	a := Run(olden.NewEnv(olden.Base, 16), Config{Levels: 3, Steps: 150, Seed: 5})
	b := Run(olden.NewEnv(olden.Base, 16), Config{Levels: 3, Steps: 300, Seed: 5})
	if float64(b.HeapBytes) > 2.0*float64(a.HeapBytes) {
		t.Fatalf("heap doubled under steady churn: %d -> %d", a.HeapBytes, b.HeapBytes)
	}
}

func TestBadLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Levels=0 did not panic")
		}
	}()
	Run(olden.NewEnv(olden.Base, 16), Config{Levels: 0, Steps: 5})
}

func TestCcmallocUsesFigure4Hints(t *testing.T) {
	// The addList path must produce real co-locations — the paper's
	// Figure 4 in action: most hinted allocations land in the hint's
	// block or at least on its page.
	env := olden.NewEnv(olden.CCMallocClosest, 16)
	Run(env, Config{Levels: 3, Steps: 80, Seed: 1})
	cc := env.Alloc.(*ccmalloc.Allocator)
	s := cc.Stats()
	if s.HintedAllocs == 0 {
		t.Fatal("health issued no hinted allocations")
	}
	located := s.SameBlock + s.SamePage + s.OverflowPage
	if rate := float64(located) / float64(s.HintedAllocs); rate < 0.8 {
		t.Fatalf("only %.0f%% of hints honored near the hint", 100*rate)
	}
	if s.SameBlock == 0 {
		t.Fatal("no same-block co-locations at all")
	}
}
