package olden_test

import (
	"reflect"
	"testing"

	"ccl/internal/olden"
	"ccl/internal/olden/health"
	"ccl/internal/olden/mst"
	"ccl/internal/olden/perimeter"
	"ccl/internal/olden/treeadd"
)

// TestSeedDeterminism is the seed-determinism regression: two runs of
// the same workload with the same seed and variant must produce a
// byte-identical Result — checksum, heap footprint, and every
// per-level cache counter. Figure 7 comparisons are meaningless if
// reruns jitter, and the differential oracle relies on replays being
// exact.
func TestSeedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload twice")
	}
	variants := []olden.Variant{olden.Base, olden.CCMallocClosest, olden.CCMorphClusterColor}
	workloads := []struct {
		name string
		run  func(olden.Variant) olden.Result
	}{
		{"treeadd", func(v olden.Variant) olden.Result {
			return treeadd.Run(olden.NewEnv(v, 16), treeadd.Config{Depth: 9, Repeats: 2})
		}},
		{"health", func(v olden.Variant) olden.Result {
			return health.Run(olden.NewEnv(v, 16), health.Config{Levels: 3, Steps: 40, MorphInterval: 10, Seed: 1})
		}},
		{"mst", func(v olden.Variant) olden.Result {
			return mst.Run(olden.NewEnv(v, 16), mst.Config{NumVert: 96, EdgesPer: 8, Buckets: 4, Seed: 3})
		}},
		{"perimeter", func(v olden.Variant) olden.Result {
			return perimeter.Run(olden.NewEnv(v, 16), perimeter.Config{ImageSize: 128, Circles: 6, Repeats: 2, Seed: 5})
		}},
	}
	for _, w := range workloads {
		for _, v := range variants {
			t.Run(w.name+"/"+v.Name(), func(t *testing.T) {
				a, b := w.run(v), w.run(v)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("same-seed reruns diverged:\n  first:  %+v\n  second: %+v", a, b)
				}
			})
		}
	}
}
