// Command ccperf runs the repository's benchmark suites with fixed
// iteration counts, emits a ccl-perf/v1 report, and gates it against
// the checked-in baseline.
//
// Usage:
//
//	ccperf -json                  # run suites, print report JSON
//	ccperf -out BENCH_sim.json    # run suites, write report to a file
//	ccperf -check                 # run suites, fail on baseline regressions
//	ccperf -update                # run suites, refresh the baseline in place
//
// See DESIGN.md §9 for the baseline policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"ccl/internal/perf"
)

func main() {
	jsonOut := flag.Bool("json", false, "print the ccl-perf/v1 report to stdout")
	out := flag.String("out", "", "write the report to this file")
	check := flag.Bool("check", false, "compare against the baseline and exit non-zero on regression")
	update := flag.Bool("update", false, "rewrite the baseline file with this run's numbers")
	baseline := flag.String("baseline", "BENCH_sim.json", "baseline report path")
	tolerance := flag.Float64("time-tolerance", perf.DefaultTimeTolerance,
		"relative ns/op slack before a regression is declared")
	flag.Parse()

	if !*jsonOut && *out == "" && !*check && !*update {
		fmt.Fprintln(os.Stderr, "ccperf: nothing to do; pass -json, -out, -check, or -update")
		flag.Usage()
		os.Exit(2)
	}

	entries, err := runSuites()
	if err != nil {
		fatal(err)
	}
	report := perf.NewReport(entries)

	// Carry the baseline's note and reference block forward so -update
	// does not erase history.
	if prev, err := os.ReadFile(*baseline); err == nil {
		if pr, err := perf.DecodeReport(prev); err == nil {
			report.Note = pr.Note
			report.Reference = pr.Reference
		}
	}

	enc, err := report.Encode()
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		os.Stdout.Write(enc)
	}
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	}
	if *update {
		if err := os.WriteFile(*baseline, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccperf: baseline %s updated (%d benchmarks)\n", *baseline, len(report.Bench))
	}
	if *check {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(fmt.Errorf("reading baseline: %v", err))
		}
		base, err := perf.DecodeReport(data)
		if err != nil {
			fatal(err)
		}
		violations := perf.Compare(report, base, *tolerance)
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "ccperf: %d regression(s) vs %s:\n", len(violations), *baseline)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ccperf: %d benchmarks within tolerance of %s\n", len(base.Bench), *baseline)
	}
}

// runSuites executes every perf.Suite plus the high-iteration
// BenchmarkCacheAccess override and returns the merged entries.
func runSuites() ([]perf.Entry, error) {
	var entries []perf.Entry
	for _, s := range perf.Suites() {
		es, err := runBench(s.Package, s.Pattern, s.Iterations)
		if err != nil {
			return nil, err
		}
		entries = append(entries, es...)
	}
	// The per-access benchmark needs millions of iterations to resolve;
	// re-run it alone and replace the short-count measurement.
	hot, err := runBench("ccl", "^BenchmarkCacheAccess$", perf.CacheAccessIterations)
	if err != nil {
		return nil, err
	}
	for _, h := range hot {
		for i := range entries {
			if entries[i].Key() == h.Key() {
				entries[i] = h
			}
		}
	}
	return entries, nil
}

// runBench shells out to go test for one suite and parses the output.
func runBench(pkg, pattern string, iterations int64) ([]perf.Entry, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", pattern,
		"-benchtime", fmt.Sprintf("%dx", iterations),
		"-benchmem",
		pkg,
	}
	fmt.Fprintf(os.Stderr, "ccperf: go %s\n", argsLine(args))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %s %s: %v\n%s", pattern, pkg, err, outBytes)
	}
	return perf.ParseBench(pkg, string(outBytes))
}

func argsLine(args []string) string {
	s := ""
	for i, a := range args {
		if i > 0 {
			s += " "
		}
		s += a
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccperf:", err)
	os.Exit(1)
}
