// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench [-full] [-list] [-json path] [-profile dir] [-ndjson] [-parallel n] [-fault point[:n]] [experiment ...]
//
// Run ccbench -list for the available experiment ids; "all" (the
// default) runs every experiment in paper order. -full runs
// paper-scale structure sizes on the unscaled §4.1/Table 1 machines;
// expect minutes instead of seconds. -json additionally writes every
// table that ran as a machine-readable report (schema in DESIGN.md
// "Telemetry"), the format committed BENCH_*.json files use. Flags
// may appear before or after experiment ids.
//
// -profile dir exports every per-workload field profile the run
// produced (today: the fieldprof experiment) into dir, one
// <workload>.json in the ccl-profile/v1 schema plus one
// <workload>.pb.gz in pprof's profile.proto format, readable with
// `go tool pprof -top dir/<workload>.pb.gz`. With -profile and no
// experiment ids, the run defaults to the fieldprof experiment
// instead of "all". -ndjson replaces the human progress lines on
// stderr with one JSON object per line (events "experiment" and
// "run"), so long runs are machine-observable live; tables still
// render to stdout.
//
// -parallel bounds the worker pool the experiments' jobs run on; the
// default is GOMAXPROCS and -parallel 1 is the serial reference run.
// Every job builds its workloads from fixed seeds inside its own run
// context (internal/sim), so the tables — and the -json report, apart
// from its wall-time fields — are identical at any parallelism.
// Progress lines go to stderr as experiments finish; completed tables
// stream to stdout in paper order.
//
// -fault injects a deterministic failure (see internal/faults):
// "arena-grow:3" fails the 3rd simulated-memory growth. The injector
// is armed afresh on each job's run context, so the fault fires at
// the Nth growth within every job, deterministically at any
// -parallel setting (unlike a process-wide counter, which would make
// the victim depend on scheduling). Jobs that hit the fault are
// recorded as structured failure entries in the JSON report — the run
// itself still exits 0, because a sweep that measures robustness must
// outlive the failures it provokes. Ctrl-C interrupts gracefully: no
// new jobs start, running jobs drain, and completed experiments are
// flushed to the -json report with its "interrupted" marker set. A
// second Ctrl-C skips the drain and exits immediately, so a hung job
// can never hold the shutdown hostage (internal/drain).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"ccl/internal/bench"
	"ccl/internal/drain"
	"ccl/internal/faults"
	"ccl/internal/profile"
	"ccl/internal/sim"
)

// reorderArgs moves flags (and the value of flags that take one) in
// front of positional arguments, so `ccbench table1 -json out.json`
// works: the flag package stops at the first positional otherwise.
// A value flag with nothing after it is an error — without the check,
// reordering would hand the flag a positional as its value.
func reorderArgs(args []string) ([]string, error) {
	valueFlags := map[string]bool{
		"-json": true, "--json": true,
		"-fault": true, "--fault": true,
		"-parallel": true, "--parallel": true,
		"-profile": true, "--profile": true,
	}
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) > 1 && a[0] == '-' {
			flags = append(flags, a)
			if valueFlags[a] {
				if i+1 >= len(args) {
					return nil, fmt.Errorf("flag needs an argument: %s", a)
				}
				i++
				flags = append(flags, args[i])
			}
			continue
		}
		pos = append(pos, a)
	}
	return append(flags, pos...), nil
}

// parseFault parses "point[:n]" and validates the injection point.
// Only arena-grow has a run-context seam (the grow guard every arena
// adopted by a sim.Sim consults); the other points are armed per
// structure and exist for tests.
func parseFault(spec string) (faults.Point, int64, error) {
	point, nstr, hasN := strings.Cut(spec, ":")
	n := int64(1)
	if hasN {
		v, err := strconv.ParseInt(nstr, 10, 64)
		if err != nil || v < 1 {
			return "", 0, fmt.Errorf("bad occurrence %q in -fault %s (want a positive integer)", nstr, spec)
		}
		n = v
	}
	switch faults.Point(point) {
	case faults.ArenaGrow:
		return faults.ArenaGrow, n, nil
	case faults.AllocBudget, faults.PlaceCluster, faults.TraceRecord:
		return "", 0, fmt.Errorf("-fault %s: point %q has no run-context seam (test-only)", spec, point)
	default:
		return "", 0, fmt.Errorf("-fault %s: unknown point %q (available: %v)", spec, point, faults.Points())
	}
}

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slow)")
	list := flag.Bool("list", false, "list available experiments and exit")
	jsonPath := flag.String("json", "", "also write the results as a JSON report to `path`")
	profileDir := flag.String("profile", "", "export field profiles (ccl-profile/v1 JSON + pprof .pb.gz) into `dir`")
	ndjson := flag.Bool("ndjson", false, "stream progress to stderr as JSON lines instead of human text")
	fault := flag.String("fault", "", "inject a fault at `point[:n]` (e.g. arena-grow:3); failures are recorded, not fatal")
	parallel := flag.Int("parallel", 0, "worker pool size; 0 means GOMAXPROCS, 1 is strictly serial")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccbench [-full] [-list] [-json path] [-profile dir] [-ndjson] [-parallel n] [-fault point[:n]] [experiment ...]\navailable: all %v\n", bench.IDs())
	}
	args, err := reorderArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(2)
	}

	if *list {
		for _, sp := range bench.Registry() {
			fmt.Printf("%-16s %s\n", sp.ID, sp.Desc)
		}
		return
	}

	newSim := sim.New
	if *fault != "" {
		point, n, err := parseFault(*fault)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(2)
		}
		newSim = func() *sim.Sim {
			s := sim.New()
			faults.NewInjector().FailNth(point, n).ArmSim(s)
			return s
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		if *profileDir != "" {
			// Profiling without explicit ids means the profiler
			// showcase, not a full paper regeneration.
			ids = []string{"fieldprof"}
		} else {
			ids = []string{"all"}
		}
	}

	var specs []bench.Spec
	for _, id := range ids {
		if id == "all" {
			specs = append(specs, bench.Registry()...)
			continue
		}
		sp, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q\navailable: all %v\n(run ccbench -list for descriptions)\n", id, bench.IDs())
			os.Exit(2)
		}
		specs = append(specs, sp)
	}

	// SIGINT cancels the context; the pool stops issuing new jobs,
	// running jobs drain, and the partial report — every experiment
	// that completed, partial tables marked interrupted — still
	// flushes to -json. A second SIGINT force-exits: a hung job must
	// not be able to block the drain forever.
	ctx, stop := drain.Context(context.Background(), func() {
		fmt.Fprintln(os.Stderr, "ccbench: second interrupt, exiting without drain")
		os.Exit(130)
	}, os.Interrupt)
	defer stop()

	rep := bench.Run(ctx, specs, bench.Options{
		Full:     *full,
		Parallel: *parallel,
		NewSim:   newSim,
		OnProgress: func(p bench.Progress) {
			if *ndjson {
				emitNDJSON(os.Stderr, map[string]any{
					"event": "experiment", "id": p.ID,
					"done": p.Done, "total": p.Total,
					"jobs": p.Jobs, "failed": p.Failed, "skipped": p.Skipped,
					"wall_us": p.Wall.Microseconds(),
				})
				return
			}
			if p.Skipped == p.Jobs {
				fmt.Fprintf(os.Stderr, "ccbench: [%d/%d] %s skipped (interrupted)\n", p.Done, p.Total, p.ID)
				return
			}
			fmt.Fprintf(os.Stderr, "ccbench: [%d/%d] %s done (%d job(s), %v)",
				p.Done, p.Total, p.ID, p.Jobs, p.Wall.Round(time.Millisecond))
			if p.Failed > 0 {
				fmt.Fprintf(os.Stderr, ", %d failed", p.Failed)
			}
			if p.Skipped > 0 {
				fmt.Fprintf(os.Stderr, ", %d skipped", p.Skipped)
			}
			fmt.Fprintln(os.Stderr)
		},
		OnTable: func(t bench.Table, wall time.Duration) {
			t.Render(os.Stdout)
			fmt.Printf("  (%s in %v)\n\n", t.ID, wall.Round(time.Millisecond))
		},
	})

	for _, f := range rep.Failures {
		where := f.Experiment
		if f.Job != "" {
			where = f.Job
		}
		fmt.Fprintf(os.Stderr, "ccbench: %s failed (%s): %s\n", where, f.Class, f.Error)
	}
	if *ndjson {
		emitNDJSON(os.Stderr, map[string]any{
			"event": "run", "experiments": len(rep.Experiments),
			"failures": len(rep.Failures), "interrupted": rep.Interrupted,
		})
	}

	if *profileDir != "" {
		n, err := writeProfiles(*profileDir, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(1)
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "ccbench: -profile %s: no experiment produced field profiles (try fieldprof)\n", *profileDir)
		} else {
			fmt.Printf("wrote %d field profile(s) (%s JSON + pprof .pb.gz) to %s\n", n, profile.Schema, *profileDir)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteReport(f, rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "ccbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: closing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote JSON report (%s) to %s\n", bench.ReportSchema, *jsonPath)
	}
	if rep.Interrupted {
		fmt.Fprintln(os.Stderr, "ccbench: interrupted; partial results flushed")
	}
}

// emitNDJSON writes one machine-readable progress line. Marshaling a
// map keeps the schema flexible; encoding/json sorts the keys, so the
// lines are deterministic.
func emitNDJSON(w *os.File, obj map[string]any) {
	b, err := json.Marshal(obj)
	if err != nil {
		fmt.Fprintf(w, `{"event":"error","error":%q}`+"\n", err.Error())
		return
	}
	fmt.Fprintf(w, "%s\n", b)
}

// writeProfiles exports every per-workload profile in the report into
// dir: <workload>.json (ccl-profile/v1) and <workload>.pb.gz
// (profile.proto, gzip). Workloads are written in sorted order so the
// directory contents are reproducible; the count of workloads written
// is returned.
func writeProfiles(dir string, rep bench.Report) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for _, t := range rep.Experiments {
		names := make([]string, 0, len(t.Profiles))
		for name := range t.Profiles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := t.Profiles[name]
			if err := writeProfileFile(filepath.Join(dir, name+".json"), func(w io.Writer) error {
				return profile.WriteJSON(w, p)
			}); err != nil {
				return n, err
			}
			if err := writeProfileFile(filepath.Join(dir, name+".pb.gz"), p.WritePprof); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// writeProfileFile creates path and streams one export into it,
// surfacing close errors (the gzip trailer lands on Close's flush).
func writeProfileFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}
