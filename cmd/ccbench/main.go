// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench [-full] [-list] [-json path] [-fault point[:n]] [experiment ...]
//
// Run ccbench -list for the available experiment ids; "all" (the
// default) runs every experiment in paper order. -full runs
// paper-scale structure sizes on the unscaled §4.1/Table 1 machines;
// expect minutes instead of seconds. -json additionally writes every
// table that ran as a machine-readable report (schema in DESIGN.md
// "Telemetry"), the format committed BENCH_*.json files use. Flags
// may appear before or after experiment ids.
//
// -fault injects a deterministic failure (see internal/faults):
// "arena-grow:3" fails the 3rd simulated-memory growth anywhere in the
// run. Experiments that hit the fault are recorded as structured
// failure entries in the JSON report — the run itself still exits 0,
// because a sweep that measures robustness must outlive the failures
// it provokes. Ctrl-C interrupts gracefully: completed experiments are
// flushed to the -json report with its "interrupted" marker set.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"ccl/internal/bench"
	"ccl/internal/faults"
)

// experiment couples a runner with the one-line description -list
// prints.
type experiment struct {
	run  func(ctx context.Context, full bool) bench.Table
	desc string
}

var experiments = map[string]experiment{
	"table1":          {func(context.Context, bool) bench.Table { return bench.Table1() }, "RSIM simulation parameters (paper Table 1)"},
	"fig5":            {bench.Fig5, "tree microbenchmark: avg cycles/search for four layouts (paper Fig. 5)"},
	"fig6":            {bench.Fig6, "RADIANCE and VIS macrobenchmarks, normalized time (paper Fig. 6)"},
	"table2":          {bench.Table2, "Olden benchmark characteristics (paper Table 2)"},
	"fig7":            {bench.Fig7, "Olden suite under eight placement schemes, cycle breakdown (paper Fig. 7)"},
	"table3":          {func(context.Context, bool) bench.Table { return bench.Table3() }, "qualitative technique trade-off summary (paper Table 3)"},
	"control":         {bench.Control, "ccmalloc null-hint control experiment (§4.4)"},
	"memovh":          {bench.MemOvh, "heap footprint by allocation strategy (§4.4)"},
	"fig10":           {bench.Fig10, "predicted vs measured C-tree speedup across tree sizes (paper Fig. 10)"},
	"metrics":         {bench.Metrics, "telemetry: 3C miss classes, per-structure attribution, set heatmaps"},
	"ablate-color":    {bench.AblationColorFrac, "Color_const sweep: C-tree speedup vs colored cache fraction"},
	"ablate-block":    {bench.AblationBlockSize, "block-size sweep vs the model's K = log2(k+1)"},
	"ablate-interval": {bench.AblationMorphInterval, "health: ccmorph reorganization interval sweep"},
}

var order = []string{
	"table1", "fig5", "fig6", "table2", "fig7", "table3", "control",
	"memovh", "fig10", "metrics", "ablate-color", "ablate-block", "ablate-interval",
}

// reorderArgs moves flags (and the value of flags that take one) in
// front of positional arguments, so `ccbench table1 -json out.json`
// works: the flag package stops at the first positional otherwise.
// A value flag with nothing after it is an error — without the check,
// reordering would hand the flag a positional as its value.
func reorderArgs(args []string) ([]string, error) {
	valueFlags := map[string]bool{"-json": true, "--json": true, "-fault": true, "--fault": true}
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) > 1 && a[0] == '-' {
			flags = append(flags, a)
			if valueFlags[a] {
				if i+1 >= len(args) {
					return nil, fmt.Errorf("flag needs an argument: %s", a)
				}
				i++
				flags = append(flags, args[i])
			}
			continue
		}
		pos = append(pos, a)
	}
	return append(flags, pos...), nil
}

// armFault parses "point[:n]" and arms the process-wide injection it
// names. Only arena-grow has a process-wide seam (the default grow
// guard every new arena inherits); the other points are armed per
// structure and exist for tests.
func armFault(spec string) error {
	point, nstr, hasN := strings.Cut(spec, ":")
	n := int64(1)
	if hasN {
		v, err := strconv.ParseInt(nstr, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("bad occurrence %q in -fault %s (want a positive integer)", nstr, spec)
		}
		n = v
	}
	switch faults.Point(point) {
	case faults.ArenaGrow:
		faults.NewInjector().FailNth(faults.ArenaGrow, n).ArmDefaultGrowGuard()
		return nil
	case faults.AllocBudget, faults.PlaceCluster, faults.TraceRecord:
		return fmt.Errorf("-fault %s: point %q has no process-wide seam (test-only)", spec, point)
	default:
		return fmt.Errorf("-fault %s: unknown point %q (available: %v)", spec, point, faults.Points())
	}
}

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slow)")
	list := flag.Bool("list", false, "list available experiments and exit")
	jsonPath := flag.String("json", "", "also write the results as a JSON report to `path`")
	fault := flag.String("fault", "", "inject a fault at `point[:n]` (e.g. arena-grow:3); failures are recorded, not fatal")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccbench [-full] [-list] [-json path] [-fault point[:n]] [experiment ...]\navailable: all %v\n", order)
	}
	args, err := reorderArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(2)
	}

	if *list {
		for _, id := range order {
			fmt.Printf("%-16s %s\n", id, experiments[id].desc)
		}
		return
	}

	if *fault != "" {
		if err := armFault(*fault); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(2)
		}
		defer faults.DisarmDefaultGrowGuard()
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"all"}
	}

	var run []string
	for _, id := range ids {
		if id == "all" {
			run = append(run, order...)
			continue
		}
		if _, ok := experiments[id]; !ok {
			fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q\navailable: all %v\n(run ccbench -list for descriptions)\n", id, order)
			os.Exit(2)
		}
		run = append(run, id)
	}

	// SIGINT cancels the context; experiments poll it between units of
	// work and return partial tables, and the loop below stops issuing
	// new experiments, so a Ctrl-C still flushes the -json report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep := bench.Report{Schema: bench.ReportSchema, Full: *full}
	for _, id := range run {
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		start := time.Now()
		t, fail := bench.RunExperiment(ctx, id, experiments[id].run, *full)
		if fail != nil {
			rep.Failures = append(rep.Failures, *fail)
			fmt.Fprintf(os.Stderr, "ccbench: %s failed (%s): %s\n", id, fail.Class, fail.Error)
			continue
		}
		rep.Experiments = append(rep.Experiments, t)
		t.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if ctx.Err() != nil {
		rep.Interrupted = true
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteReport(f, rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "ccbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: closing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote JSON report (%s) to %s\n", bench.ReportSchema, *jsonPath)
	}
	if rep.Interrupted {
		fmt.Fprintln(os.Stderr, "ccbench: interrupted; partial results flushed")
	}
}
