// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench [-full] [experiment ...]
//
// Experiments: table1 fig5 fig6 table2 fig7 table3 control memovh
// fig10, or "all" (the default). -full runs paper-scale structure
// sizes on the unscaled §4.1/Table 1 machines; expect minutes instead
// of seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ccl/internal/bench"
)

var experiments = map[string]func(full bool) bench.Table{
	"table1":          func(bool) bench.Table { return bench.Table1() },
	"fig5":            bench.Fig5,
	"fig6":            bench.Fig6,
	"table2":          bench.Table2,
	"fig7":            bench.Fig7,
	"table3":          func(bool) bench.Table { return bench.Table3() },
	"control":         bench.Control,
	"memovh":          bench.MemOvh,
	"fig10":           bench.Fig10,
	"ablate-color":    bench.AblationColorFrac,
	"ablate-block":    bench.AblationBlockSize,
	"ablate-interval": bench.AblationMorphInterval,
}

var order = []string{"table1", "fig5", "fig6", "table2", "fig7", "table3", "control", "memovh", "fig10", "ablate-color", "ablate-block", "ablate-interval"}

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slow)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccbench [-full] [experiment ...]\navailable: all %v\n", order)
	}
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"all"}
	}

	var run []string
	for _, id := range ids {
		if id == "all" {
			run = append(run, order...)
			continue
		}
		if _, ok := experiments[id]; !ok {
			fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q\navailable: all %v\n", id, order)
			os.Exit(2)
		}
		run = append(run, id)
	}

	for _, id := range run {
		start := time.Now()
		t := experiments[id](*full)
		t.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
