// Command cclserve is the simulation server: a long-running HTTP
// daemon that accepts workload specs and uploaded binary traces, runs
// them as jobs on a sharded fleet of per-tenant run contexts, and
// streams progress and results as NDJSON (internal/serve).
//
// Usage:
//
//	cclserve [-addr host:port] [-shards n] [-workers n] [-queue n]
//	         [-degrade-at n] [-deadline d] [-drain-timeout d]
//	         [-rate r] [-burst n] [-max-active n] [-budget bytes]
//	cclserve -selftest [-tenants n] [-concurrent n]
//
// Endpoints:
//
//	POST /v1/jobs        submit a ccl-serve/v1 JSON spec, stream NDJSON
//	POST /v1/replay      submit a raw binary trace (octet-stream)
//	GET  /v1/experiments list runnable experiment ids
//	GET  /healthz        liveness + load
//
// Robustness is the point: per-tenant admission control (token bucket
// + bounded queue) rejects overload with typed 429/503s, every
// request carries a deadline and a simulated-memory budget, transient
// injected faults are retried with jittered backoff, sustained
// overload degrades to reduced-sweep "smoke" runs flagged in the
// result, a panic kills only its own request, and SIGTERM/SIGINT
// drains: admission stops (503), in-flight requests finish, and if
// -drain-timeout expires first they are cancelled, each flushing a
// partial, interrupted result. A second signal force-exits. Identical
// spec + seed produce a byte-identical result at any concurrency.
//
// -selftest runs the load-test driver in-process (8 tenants x 32
// concurrent requests under a fault schedule arming every serve-*
// point, every completed result diffed byte-for-byte against a serial
// reference run, then a drain under load) and exits 0 only if every
// check holds — the same driver the repo's tests run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"time"

	"ccl/internal/drain"
	"ccl/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "listen address")
	shards := flag.Int("shards", 4, "worker shards (a tenant maps to one)")
	workers := flag.Int("workers", 2, "workers per shard")
	queue := flag.Int("queue", 8, "queued requests per shard beyond the workers")
	degradeAt := flag.Int("degrade-at", 12, "admitted-request count beyond which new requests degrade to smoke runs; 0 disables")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits before cancelling in-flight requests")
	rate := flag.Float64("rate", 10, "per-tenant admitted requests per second; 0 disables rate limiting")
	burst := flag.Int("burst", 8, "per-tenant token-bucket burst")
	maxActive := flag.Int("max-active", 8, "per-tenant admitted-but-unfinished request bound")
	budget := flag.Int64("budget", 0, "default per-request simulated-memory budget in bytes; 0 means unbudgeted")
	selftest := flag.Bool("selftest", false, "run the load-test driver and exit")
	tenants := flag.Int("tenants", 8, "selftest: concurrent tenants")
	concurrent := flag.Int("concurrent", 32, "selftest: concurrent requests per tenant")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cclserve: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	if *selftest {
		os.Exit(runSelftest(*tenants, *concurrent))
	}

	cfg := serve.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		DegradeAt:       *degradeAt,
		DefaultDeadline: *deadline,
		DefaultTenant: serve.TenantConfig{
			RatePerSec:  *rate,
			Burst:       *burst,
			MaxActive:   *maxActive,
			BudgetBytes: *budget,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cclserve: "+format+"\n", args...)
		},
	}
	srv := serve.New(cfg)

	// First SIGTERM/SIGINT starts the drain; a second force-exits, so
	// a hung request can never hold the shutdown hostage.
	ctx, stop := drain.Context(context.Background(), func() {
		fmt.Fprintln(os.Stderr, "cclserve: second signal, exiting without drain")
		os.Exit(130)
	}, os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Request contexts descend from the serve.Server's base
		// context, so a drain-timeout hard-cancel reaches every
		// in-flight run.
		BaseContext: func(net.Listener) context.Context { return srv.BaseContext() },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cclserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cclserve: listening on http://%s (drain with SIGTERM)\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "cclserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop admitting immediately (new submissions get typed
	// 503s while in-flight streams finish), then bound the wait.
	fmt.Fprintf(os.Stderr, "cclserve: draining (timeout %v)\n", *drainTimeout)
	srv.BeginDrain()
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	derr := srv.Drain(dctx)
	// Close the listener last: the drain owns request lifetimes; the
	// HTTP server just needs to let the final bytes flush.
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "cclserve: shutdown: %v\n", err)
	}
	if derr != nil {
		fmt.Fprintf(os.Stderr, "cclserve: %v\n", derr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "cclserve: drained clean")
}

// runSelftest drives the in-process load test and prints its summary.
func runSelftest(tenants, concurrent int) int {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := serve.LoadTest(ctx, serve.LoadTestConfig{
		Tenants:       tenants,
		Concurrent:    concurrent,
		DrainAfter:    20 * time.Millisecond,
		DrainDeadline: 10 * time.Second,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cclserve: selftest: %v\n", err)
		return 1
	}
	b, _ := json.MarshalIndent(res, "", "  ")
	fmt.Printf("%s\n", b)
	if err := res.Failed(); err != nil {
		fmt.Fprintf(os.Stderr, "cclserve: selftest FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "cclserve: selftest passed")
	return 0
}
