// Package ccl is the public API of the cache-conscious structure
// layout library — a reproduction of Chilimbi, Hill & Larus,
// "Cache-Conscious Structure Layout" (PLDI 1999).
//
// The library provides:
//
//   - a simulated machine (byte-addressable address space plus a
//     parameterized multi-level cache with TLB and cycle accounting)
//     on which placement experiments are exact and reproducible;
//   - a conventional boundary-tag allocator (the malloc baseline);
//   - CCMalloc, the paper's cache-conscious heap allocator with the
//     closest, first-fit, and new-block co-location strategies;
//   - CCMorph, the paper's transparent tree reorganizer (subtree
//     clustering and cache coloring);
//   - the §5 analytic framework for predicting the benefit of a
//     cache-conscious layout a priori;
//   - the paper's evaluation suite: the tree microbenchmark, four
//     Olden benchmarks, and the RADIANCE/VIS macrobenchmark
//     substitutes (see DESIGN.md and EXPERIMENTS.md).
//
// Quickstart:
//
//	m := ccl.NewPaperMachine()
//	alloc, err := ccl.NewCCMalloc(m, ccl.NewBlock)
//	head, err := alloc.AllocHint(16, seed) // near an existing element
//	cell, err := alloc.AllocHint(16, head) // co-located with head
//
// Failures carry typed sentinels (ErrOutOfMemory, ErrPlacementFailed,
// ...) matchable with errors.Is; see examples/ for complete programs.
package ccl

import (
	"io"

	"ccl/internal/apps/serving"
	"ccl/internal/cache"
	"ccl/internal/cclerr"
	"ccl/internal/ccmalloc"
	"ccl/internal/ccmorph"
	"ccl/internal/heap"
	"ccl/internal/layout"
	"ccl/internal/machine"
	"ccl/internal/memsys"
	"ccl/internal/model"
	"ccl/internal/profile"
	"ccl/internal/sim"
	"ccl/internal/split"
	"ccl/internal/telemetry"
	"ccl/internal/trees"
)

// Core simulated-machine types.
type (
	// Machine is a simulated uniprocessor memory system: an address
	// space plus a cache hierarchy with cycle accounting.
	Machine = machine.Machine
	// Addr is a simulated address; the zero value is nil.
	Addr = memsys.Addr
	// Arena is the simulated address space.
	Arena = memsys.Arena
	// CacheConfig parameterizes the simulated hierarchy.
	CacheConfig = cache.Config
	// CacheStats carries cycle and miss counters.
	CacheStats = cache.Stats
	// Geometry identifies the cache level placement targets.
	Geometry = layout.Geometry
)

// NilAddr is the simulated null pointer.
const NilAddr = memsys.NilAddr

// PtrSize is the simulated pointer width in bytes (32-bit, as on the
// paper's UltraSPARC).
const PtrSize = memsys.PtrSize

// NewMachine builds a machine with an explicit cache configuration.
func NewMachine(cfg CacheConfig) *Machine { return machine.New(cfg) }

// NewPaperMachine builds the paper's §4.1 measurement machine: 16 KB
// direct-mapped L1, 1 MB direct-mapped L2, 64-entry TLB.
func NewPaperMachine() *Machine { return machine.NewPaper() }

// NewScaledMachine builds the §4.1 machine with capacities divided by
// factor, preserving block sizes so placement behaves identically at
// smaller scale.
func NewScaledMachine(factor int64) *Machine { return machine.NewScaled(factor) }

// PaperCache returns the §4.1 hierarchy configuration.
func PaperCache() CacheConfig { return cache.PaperHierarchy() }

// RSIMCache returns the Table 1 simulation hierarchy.
func RSIMCache() CacheConfig { return cache.RSIMHierarchy() }

// Sim is a per-run simulation context: machines built through one
// share its grow guard and telemetry registry, and two Sims share no
// mutable state at all — the unit of isolation for running
// simulations concurrently (one goroutine per Sim; see DESIGN.md §8).
type Sim = sim.Sim

// NewSim returns a fresh run context.
func NewSim() *Sim { return sim.New() }

// Allocators.
type (
	// Allocator is the interface shared by the baseline allocator
	// and CCMalloc; co-location hints are no-ops for the baseline.
	Allocator = heap.Allocator
	// Malloc is the conventional boundary-tag allocator.
	Malloc = heap.Malloc
	// CCMalloc is the paper's cache-conscious allocator (§3.2).
	CCMalloc = ccmalloc.Allocator
	// Strategy selects CCMalloc's block-selection policy.
	Strategy = ccmalloc.Strategy
)

// CCMalloc strategies (§3.2.1).
const (
	// Closest places spills as near the hint's block as possible.
	Closest = ccmalloc.Closest
	// FirstFit places spills in the first block with room.
	FirstFit = ccmalloc.FirstFit
	// NewBlock places spills in unused blocks, reserving their
	// remainder for future hinted allocations.
	NewBlock = ccmalloc.NewBlock
)

// NewMalloc returns a conventional allocator over the machine's
// address space.
func NewMalloc(m *Machine) *Malloc { return heap.New(m.Arena) }

// NewCCMalloc returns a cache-conscious allocator targeting the
// machine's last-level cache, charging its bookkeeping cost to the
// machine's clock. It fails with ErrBadGeometry when the cache's
// placement geometry is unusable and ErrInvalidArg for an unknown
// strategy.
func NewCCMalloc(m *Machine, s Strategy) (*CCMalloc, error) {
	return ccmalloc.New(m.Arena, layout.FromLevel(m.Cache.LastLevel()), s, m.Cache)
}

// CCMorph (§3.1).
type (
	// StructureLayout is the template describing an element type to
	// CCMorph: its size, arity, and pointer accessors.
	StructureLayout = ccmorph.Layout
	// MorphConfig carries the cache parameters of a reorganization.
	MorphConfig = ccmorph.Config
	// MorphStats reports what a reorganization did.
	MorphStats = ccmorph.Stats
	// Placer is a shareable placement context for morphing several
	// structures against one cache partition.
	Placer = ccmorph.Placer
	// MorphStrategy selects CCMorph's placement order: the paper's
	// subtree clustering or the cache-oblivious vEB order.
	MorphStrategy = ccmorph.Strategy
)

// CCMorph placement strategies.
const (
	// SubtreeCluster packs cache-block-sized subtrees (§3.1, the
	// paper's strategy and the default).
	SubtreeCluster = ccmorph.SubtreeCluster
	// VEB places nodes in the van Emde Boas recursive order: height-
	// halving recursion keeps every descent's bottom levels on one
	// page, trading a little coloring coverage for TLB locality on
	// trees beyond TLB reach.
	VEB = ccmorph.VEB
)

// Reorganize transparently rewrites the tree rooted at root into a
// cache-conscious layout (subtree clustering, plus coloring when
// cfg.ColorFrac > 0) and returns the new root. Reorganization is
// copy-then-commit: on any error (ErrNotTree for non-tree-shaped
// inputs, ErrPlacementFailed or ErrOutOfMemory for placement
// failures) the original root is returned and the structure is
// untouched and still traversable.
func Reorganize(m *Machine, root Addr, lay StructureLayout, cfg MorphConfig,
	freeOld func(Addr)) (Addr, MorphStats, error) {
	return ccmorph.Reorganize(m, root, lay, cfg, freeOld)
}

// NewPlacer builds a shareable placement context over the machine's
// arena. It fails with ErrBadGeometry when cfg's geometry is unusable.
func NewPlacer(m *Machine, cfg MorphConfig) (*Placer, error) {
	return ccmorph.NewPlacer(m.Arena, cfg)
}

// LastLevelGeometry returns the placement geometry of the machine's
// last-level cache — the level ccmalloc and ccmorph target.
func LastLevelGeometry(m *Machine) Geometry {
	return layout.FromLevel(m.Cache.LastLevel())
}

// Analytic framework (§5).
type (
	// Locality is a structure's (D, K, Rs) locality description.
	Locality = model.Locality
	// CTreeModel predicts steady-state C-tree performance (§5.3).
	CTreeModel = model.CTree
	// CacheParams are the §5.1 timing parameters.
	CacheParams = model.CacheParams
)

// PaperParams returns the §4.1 machine's analytic timing parameters.
func PaperParams() CacheParams { return model.PaperParams() }

// Speedup evaluates the Figure 8 speedup equation.
func Speedup(p CacheParams, naiveL1, naiveL2, ccL1, ccL2 float64) float64 {
	return model.Speedup(p, naiveL1, naiveL2, ccL1, ccL2)
}

// Tree structures (§4.2's microbenchmark subjects).
type (
	// BST is a balanced binary search tree over the simulated heap.
	BST = trees.BST
	// BTree is a block-node B-tree with colored upper levels.
	BTree = trees.BTree
	// BuildOrder selects a BST's allocation order.
	BuildOrder = trees.Order
)

// BST allocation orders.
const (
	// RandomOrder scatters nodes (the naive baseline).
	RandomOrder = trees.RandomOrder
	// DepthFirstOrder allocates in preorder.
	DepthFirstOrder = trees.DepthFirstOrder
	// LevelOrder allocates level by level.
	LevelOrder = trees.LevelOrder
)

// BuildBST builds a balanced BST of keys 1..n with the given
// allocation order. It fails with ErrInvalidArg for a non-positive n
// or unknown order; allocation failures propagate.
func BuildBST(m *Machine, alloc Allocator, n int64, order BuildOrder, seed int64) (*BST, error) {
	return trees.Build(m, alloc, n, order, seed)
}

// NewBTree returns an empty B-tree whose nodes are single cache
// blocks; colorFrac > 0 reserves that cache fraction for the
// root-most nodes. It fails with ErrBadGeometry when a block cannot
// hold even one key.
func NewBTree(m *Machine, colorFrac float64) (*BTree, error) {
	return trees.NewBTree(m, colorFrac)
}

// BSTLayout returns the CCMorph template for BST nodes, for use with
// Reorganize.
func BSTLayout() StructureLayout { return trees.Layout() }

// Hot/cold structure splitting (§3.2's second technique): partition a
// structure's fields by profiled temperature, pack the hot fields into
// index-linked SoA arrays placed in the cache's hot partition, and
// bank the cold fields in an overflow record.
type (
	// SplitPartition is a hot/cold assignment of one structure's
	// fields, typically derived from a Profile via PlanBSTSplit.
	SplitPartition = split.Partition
	// SplitConfig carries the placement geometry and coloring
	// fraction of a split.
	SplitConfig = split.Config
	// SplitStats reports what a split did.
	SplitStats = split.Stats
	// SplitTree is the split form of a pointer structure: hot SoA
	// arrays plus a cold overflow bank, linked by element index.
	SplitTree = split.Tree
	// SplitBST is a BST in split form; Search runs on the hot arrays
	// and never touches a cold byte.
	SplitBST = trees.SplitBST
)

// PlanBSTSplit derives a hot/cold partition for BST nodes from a
// profile: fields the profiler ranked hot (plus the child pointers,
// which a split tree always needs) go hot, the rest cold. It fails
// with ErrInvalidArg when the profile has no structure under label.
// Apply the plan with (*BST).Split; undo with SplitTree.Reassemble.
func PlanBSTSplit(rep Profile, label string) (SplitPartition, error) {
	return trees.PlanBSTSplit(rep, label)
}

// Error taxonomy. Every library failure wraps exactly one of these
// sentinels (match with errors.Is); injected faults additionally wrap
// ErrFaultInjected alongside the operational sentinel they simulate.
var (
	// ErrOutOfMemory: the simulated address space or a budget is
	// exhausted.
	ErrOutOfMemory = cclerr.ErrOutOfMemory
	// ErrBadGeometry: a cache geometry cannot support placement.
	ErrBadGeometry = cclerr.ErrBadGeometry
	// ErrInvalidArg: a caller-supplied argument is out of range.
	ErrInvalidArg = cclerr.ErrInvalidArg
	// ErrNotTree: Reorganize's input is not tree-shaped (shared or
	// cyclic nodes, or pointers outside the structure).
	ErrNotTree = cclerr.ErrNotTree
	// ErrPlacementFailed: a cache-conscious placement could not be
	// made (the caller may fall back to conventional placement).
	ErrPlacementFailed = cclerr.ErrPlacementFailed
	// ErrCorruptTrace: a trace record failed to decode.
	ErrCorruptTrace = cclerr.ErrCorruptTrace
	// ErrFaultInjected: the failure came from the fault injector.
	ErrFaultInjected = cclerr.ErrFaultInjected
	// ErrOverloaded: admission control rejected the work (rate limit
	// or full queue); back off and retry. The server maps it to HTTP
	// 429/503 (see DESIGN.md §12).
	ErrOverloaded = cclerr.ErrOverloaded
	// ErrDeadlineExceeded: a deadline expired before the work
	// finished; partial results may still have been flushed.
	ErrDeadlineExceeded = cclerr.ErrDeadlineExceeded
	// ErrBudgetExceeded: a simulated-memory budget could not cover an
	// arena growth. Unlike ErrOutOfMemory (address-space exhaustion),
	// this is a per-request quota the submitter chose.
	ErrBudgetExceeded = cclerr.ErrBudgetExceeded
)

// ErrorClass maps an error to its machine-readable taxonomy label
// ("out-of-memory", "placement-failed", ...), or "" for errors from
// outside the taxonomy. Reports and logs use it to bucket failures.
func ErrorClass(err error) string { return cclerr.Class(err) }

// Telemetry (miss classification, per-structure attribution, set
// heatmaps, counter registry).
type (
	// Collector observes a cache hierarchy and classifies every
	// demand miss compulsory/capacity/conflict (the 3C model),
	// attributes misses to registered address regions, and keeps
	// per-set heatmap counters for the last level.
	Collector = telemetry.Collector
	// TelemetryReport is a Collector's JSON-serializable summary.
	TelemetryReport = telemetry.Report
	// Registry is a flat namespace of named counters with
	// snapshot-diffing, fed by the Each methods of the stats types.
	Registry = telemetry.Registry
)

// AttachTelemetry installs a fresh Collector as the machine's cache
// observer and returns it. Detach with m.Cache.SetObserver(nil); with
// no observer installed the simulator's outputs are unchanged.
func AttachTelemetry(m *Machine) *Collector { return telemetry.Attach(m.Cache) }

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// Profiling (field-level miss attribution, phase time series, pprof
// export; see DESIGN.md §10).
type (
	// Profiler samples cache misses down to structure.field via
	// registered field maps and keeps a windowed epoch series of
	// miss rates. It wraps its own Collector, so attaching it gives
	// the full telemetry view too.
	Profiler = profile.Profiler
	// ProfileConfig tunes the sampling period and epoch windowing.
	ProfileConfig = profile.Config
	// Profile is a Profiler's summary in the ccl-profile/v1 schema,
	// with ASCII rendering and pprof (profile.proto) export.
	Profile = profile.Report
	// RegionMap labels address ranges for attribution; structures
	// register their elements and field maps here.
	RegionMap = telemetry.RegionMap
	// FieldMap describes one structure's member layout — the key
	// that turns per-region miss counts into per-field ones.
	FieldMap = layout.FieldMap
	// Field is one named member of a FieldMap.
	Field = layout.Field
)

// AttachProfiler installs a fresh Profiler as the machine's cache
// observer and returns it. Detach with m.Cache.SetObserver(nil); a
// detached (or never-attached) machine pays nothing.
func AttachProfiler(m *Machine, cfg ProfileConfig) *Profiler {
	return profile.Attach(m.Cache, cfg)
}

// NewFieldMap validates a structure's member layout for field-level
// attribution; it fails with ErrInvalidArg on overlapping or
// out-of-bounds fields.
func NewFieldMap(structName string, size int64, fields ...Field) (FieldMap, error) {
	return layout.NewFieldMap(structName, size, fields...)
}

// WriteProfile writes a profile in the ccl-profile/v1 JSON schema —
// the same format `ccbench -profile` exports. The pprof form is
// rep.WritePprof.
func WriteProfile(w io.Writer, rep Profile) error { return profile.WriteJSON(w, rep) }

// Serving workloads (the Zipfian KV store, intrusive LRU cache, and
// cache-line-aligned d-ary priority queue of internal/apps/serving;
// see DESIGN.md §14). These are the library's serving-shaped
// structures: each races layout/placement variants over the simulated
// heap under a seeded Zipfian op stream, with per-structure telemetry
// attribution. The `ccbench serving` experiment tabulates the races.
type (
	// Zipf is a deterministic seeded Zipfian key generator (inverse
	// CDF, so exponents below 1 — the serving-canonical s=0.99 —
	// work, unlike math/rand's rejection sampler).
	Zipf = serving.Zipf
	// KV is an open-addressing hash-table KV store with tunable slot
	// layout (AoS vs hot/cold key-metadata split) and placement
	// (malloc, ccmalloc, colored).
	KV = serving.KV
	// KVConfig selects the store's layout, placement, and sizing.
	KVConfig = serving.KVConfig
	// LRU is an intrusive least-recently-used cache with co-located
	// or split list links.
	LRU = serving.LRU
	// LRUConfig selects the cache's layout, placement, and sizing.
	LRUConfig = serving.LRUConfig
	// PQueue is an implicit d-ary min-heap whose sibling groups are
	// aligned to cache lines (a 4-ary group is exactly one 64-byte
	// line).
	PQueue = serving.PQueue
	// PQConfig selects the heap's arity and capacity.
	PQConfig = serving.PQConfig
)

// KV layout and placement variants.
const (
	KVAoS      = serving.KVAoS
	KVSplit    = serving.KVSplit
	KVMalloc   = serving.KVMalloc
	KVCCMalloc = serving.KVCCMalloc
	KVColored  = serving.KVColored
)

// LRU placement variants.
const (
	LRUMalloc   = serving.LRUMalloc
	LRUCCMalloc = serving.LRUCCMalloc
)

// NewZipf returns a generator over keys [1, n] with exponent s
// (s=0 uniform; higher skews harder). It fails with ErrInvalidArg
// outside the supported parameter ranges.
func NewZipf(seed int64, s float64, n int64) (*Zipf, error) {
	return serving.NewZipf(seed, s, n)
}

// NewKV builds a KV store over the machine's heap. Configuration
// errors are typed ErrInvalidArg; a colored store whose place guard
// vetoes fails with ErrPlacementFailed.
func NewKV(m *Machine, cfg KVConfig) (*KV, error) { return serving.NewKV(m, cfg) }

// NewLRU builds an LRU cache over the machine's heap.
func NewLRU(m *Machine, cfg LRUConfig) (*LRU, error) { return serving.NewLRU(m, cfg) }

// NewPQueue builds a priority queue over the machine's heap.
func NewPQueue(m *Machine, cfg PQConfig) (*PQueue, error) { return serving.NewPQueue(m, cfg) }

// Workload drivers: seeded Zipfian op streams over the serving
// structures. Deterministic — same seed, same structure state, same
// stats.
type (
	// KVWorkload is a Zipfian get/put stream over a KV store.
	KVWorkload = serving.KVWorkload
	// LRUWorkload is a Zipfian cache-aside stream over an LRU cache.
	LRUWorkload = serving.LRUWorkload
	// PQWorkload is the hold model over a priority queue.
	PQWorkload = serving.PQWorkload
	// WorkloadStats summarizes one driven op stream; Checksum folds
	// every returned value, so two runs agree iff the structures
	// behaved identically.
	WorkloadStats = serving.WorkloadStats
)

// WarmKV populates kv with every resident key of the [1, keys] space
// (keys divisible by 3 stay absent, so a third of Zipfian lookups are
// negative).
func WarmKV(kv *KV, keys int64) error { return serving.WarmKV(kv, keys) }

// RunKV drives kv with w's op stream.
func RunKV(kv *KV, w KVWorkload) (WorkloadStats, error) { return serving.RunKV(kv, w) }

// RunLRU drives c with w's op stream.
func RunLRU(c *LRU, w LRUWorkload) (WorkloadStats, error) { return serving.RunLRU(c, w) }

// FillPQ pushes w.Fill elements with seeded pseudo-random priorities.
func FillPQ(q *PQueue, w PQWorkload) error { return serving.FillPQ(q, w) }

// RunPQ drives q with w's hold-model stream (fill first).
func RunPQ(q *PQueue, w PQWorkload) (WorkloadStats, error) { return serving.RunPQ(q, w) }
